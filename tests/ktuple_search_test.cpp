// Tests for Algorithm 1 (backtracking k-tuple search) and its ablation
// variants: the paper's Fig. 3 worked example, the three constraints as
// properties over randomized tables, and the relationships between the
// greedy / backtracking / exhaustive searchers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ktuple_search.hpp"
#include "testing/scenario.hpp"
#include "util/rng.hpp"

namespace eewa::core {
namespace {

CCTable fig3() {
  return CCTable::from_matrix(
      {{2, 3, 1, 1}, {4, 6, 2, 2}, {6, 9, 3, 3}, {8, 12, 4, 4}});
}

TEST(Backtracking, ReproducesFigure3Tuple) {
  const auto res = search_backtracking(fig3(), 16);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.tuple, (std::vector<std::size_t>{1, 1, 2, 2}));
  EXPECT_EQ(res.cores_used, 16u);
  // Per the paper, 10 cores end up at F1 and 6 at F2.
  EXPECT_EQ(fig3().ceil_at(1, 0) + fig3().ceil_at(1, 1), 10u);
  EXPECT_EQ(fig3().ceil_at(2, 2) + fig3().ceil_at(2, 3), 6u);
}

TEST(Backtracking, AllTopRowWhenCapacityTight) {
  // With exactly the F0 demand available, only the all-F0 tuple fits.
  const auto cc = fig3();
  const std::size_t top = cc.ceil_at(0, 0) + cc.ceil_at(0, 1) +
                          cc.ceil_at(0, 2) + cc.ceil_at(0, 3);
  const auto res = search_backtracking(cc, top);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.tuple, (std::vector<std::size_t>{0, 0, 0, 0}));
}

TEST(Backtracking, FailsWhenEvenTopRowExceedsCapacity) {
  const auto res = search_backtracking(fig3(), 6);  // top row needs 7
  EXPECT_FALSE(res.found);
  EXPECT_TRUE(res.tuple.empty());
}

TEST(Backtracking, PicksSlowestRowWithAbundantCores) {
  const auto res = search_backtracking(fig3(), 100);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.tuple, (std::vector<std::size_t>{3, 3, 3, 3}));
}

TEST(Backtracking, SingleClassSingleRung) {
  const auto cc = CCTable::from_matrix({{3.0}});
  const auto res = search_backtracking(cc, 4);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.tuple, (std::vector<std::size_t>{0}));
  EXPECT_EQ(res.cores_used, 3u);
}

TEST(Backtracking, ReportsSearchEffort) {
  const auto res = search_backtracking(fig3(), 16);
  EXPECT_GT(res.nodes_visited, 0u);
  EXPECT_GE(res.elapsed_us, 0.0);
}

TEST(Greedy, MatchesBacktrackingOnEasyInstances) {
  const auto g = search_greedy(fig3(), 100);
  const auto b = search_backtracking(fig3(), 100);
  ASSERT_TRUE(g.found);
  EXPECT_EQ(g.tuple, b.tuple);
}

TEST(Greedy, CanFailWhereBacktrackingSucceeds) {
  // Greedy descends to the deepest feasible rung for column 0, which
  // strands column 1; backtracking recovers.
  const auto cc = CCTable::from_matrix({{2, 2}, {3, 3}, {4, 9}});
  const auto g = search_greedy(cc, 8);
  const auto b = search_backtracking(cc, 8);
  EXPECT_FALSE(g.found);
  ASSERT_TRUE(b.found);
  EXPECT_TRUE(tuple_is_valid(cc, b.tuple, 8));
}

TEST(Exhaustive, FindsFeasibleOptimum) {
  const auto res = search_exhaustive(fig3(), 16);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(tuple_is_valid(fig3(), res.tuple, 16));
}

TEST(Exhaustive, EnergyNeverWorseThanBacktracking) {
  const auto cc = fig3();
  const auto b = search_backtracking(cc, 16);
  const auto e = search_exhaustive(cc, 16);
  ASSERT_TRUE(b.found);
  ASSERT_TRUE(e.found);
  EXPECT_LE(tuple_energy_estimate(cc, e.tuple, 16),
            tuple_energy_estimate(cc, b.tuple, 16) + 1e-9);
}

// ------------------------------------------------- proxy power model --

TEST(ProxyPower, ScansPastZeroColumns) {
  // Column 0 carries no work at any rung; the F0/F1 ratio must come from
  // column 1 (slowdown 4), not from a rank-based fallback.
  const auto cc = CCTable::from_matrix({{0, 1}, {0, 4}});
  EXPECT_NEAR(proxy_rung_power(cc, 0), 1.0, 1e-12);
  EXPECT_NEAR(proxy_rung_power(cc, 1), 1.0 / 64.0, 1e-12);
}

TEST(ProxyPower, UsesLeastMemoryBoundColumnUnderMemoryAwareAlphas) {
  // With per-class alphas, CC[1][i]/CC[0][i] = α_i + (1-α_i)·F0/F1. The
  // memory-bound class (α=0.5) shows 1.5 while the CPU-bound one shows
  // the true slowdown 2.0; the proxy must take the largest ratio.
  std::vector<ClassProfile> cls{{0, "mem", 1, 1.0, 1.0, 0.5},
                                {1, "cpu", 1, 0.5, 0.5, 0.0}};
  const auto cc = CCTable::build(cls, dvfs::FrequencyLadder({2.0, 1.0}),
                                 100.0, /*memory_aware=*/true);
  EXPECT_NEAR(cc.at(1, 0) / cc.at(0, 0), 1.5, 1e-12);
  EXPECT_NEAR(cc.at(1, 1) / cc.at(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(proxy_rung_power(cc, 1), 0.125, 1e-12);
}

TEST(ProxyPower, RankFallbackWhenNoColumnIsUsable) {
  const auto cc = CCTable::from_matrix({{0.0}, {0.0}, {0.0}});
  EXPECT_NEAR(proxy_rung_power(cc, 1), 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(proxy_rung_power(cc, 2), 1.0 / 27.0, 1e-12);
}

TEST(TupleEnergy, LeftoverCoresBilledAtIdlePowerUnderModel) {
  // 4 demanded cores at F0; the other 4 park at the slowest rung and
  // must be billed the model's idle power there, exactly as
  // EnergyAccount will bill them, not its active power.
  const energy::PowerModel model(dvfs::FrequencyLadder({2.0, 1.0}),
                                 {1.2, 1.0}, /*dyn_coeff_w=*/1.0,
                                 /*core_static_w=*/0.5, /*floor_w=*/0.0);
  const auto cc = CCTable::from_matrix({{2, 2}, {4, 4}});
  const std::vector<std::size_t> tuple{0, 0};
  const double expect = 4.0 * model.core_power_w(0, /*active=*/true) +
                        4.0 * model.core_power_w(1, /*active=*/false);
  EXPECT_NEAR(tuple_energy_estimate(cc, tuple, 8, &model), expect, 1e-12);
  EXPECT_LT(tuple_energy_estimate(cc, tuple, 8, &model),
            4.0 * model.core_power_w(0, true) +
                4.0 * model.core_power_w(1, true));
}

TEST(Exhaustive, DeterministicTieBreakPrefersSlowerTuple) {
  // Every nondecreasing tuple of this table has identical demand and
  // identical proxy energy; the tie-break must pick the lexicographically
  // greater (slower) tuple so repeated runs agree.
  const auto cc = CCTable::from_matrix({{1, 1}, {1, 1}});
  const auto res = search_exhaustive(cc, 2);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.tuple, (std::vector<std::size_t>{1, 1}));
  EXPECT_EQ(res.cores_used, 2u);
}

TEST(TupleIsValid, ChecksAllThreeConstraints) {
  const auto cc = fig3();
  EXPECT_TRUE(tuple_is_valid(cc, {1, 1, 2, 2}, 16));
  EXPECT_FALSE(tuple_is_valid(cc, {2, 1, 2, 2}, 16));   // decreasing
  EXPECT_FALSE(tuple_is_valid(cc, {3, 3, 3, 3}, 16));   // over capacity
  EXPECT_FALSE(tuple_is_valid(cc, {1, 1, 2}, 16));      // wrong arity
  EXPECT_FALSE(tuple_is_valid(cc, {1, 1, 2, 9}, 16));   // rung range
}

TEST(SearchKtuple, DispatchesOnKind) {
  const auto cc = fig3();
  EXPECT_EQ(search_ktuple(cc, 16, SearchKind::kBacktracking).tuple,
            search_backtracking(cc, 16).tuple);
  EXPECT_EQ(search_ktuple(cc, 16, SearchKind::kGreedy).found,
            search_greedy(cc, 16).found);
  EXPECT_EQ(search_ktuple(cc, 16, SearchKind::kExhaustive).found,
            search_exhaustive(cc, 16).found);
  EXPECT_EQ(search_ktuple(cc, 16, SearchKind::kPruned).found,
            search_pruned(cc, 16).found);
}

// --------------------------------------------------- pruned/DP search --

TEST(Pruned, MatchesExhaustiveOnFigure3) {
  const auto cc = fig3();
  for (const std::size_t m : {7u, 10u, 16u, 100u}) {
    const auto pr = search_pruned(cc, m);
    const auto ex = search_exhaustive(cc, m);
    ASSERT_EQ(pr.found, ex.found) << "m=" << m;
    if (pr.found) {
      EXPECT_NEAR(tuple_energy_estimate(cc, pr.tuple, m),
                  tuple_energy_estimate(cc, ex.tuple, m), 1e-9)
          << "m=" << m;
    }
  }
}

TEST(Pruned, FeasibilityMatchesBacktrackingWhenInfeasible) {
  EXPECT_FALSE(search_pruned(fig3(), 6).found);  // top row needs 7
  EXPECT_TRUE(search_pruned(fig3(), 7).found);
}

// Property sweep over the fuzz harness's own table family: every small
// random table (r·k <= 24, the exhaustive gate) must give identical
// pruned and exhaustive energy, and a pruned tuple must never be one
// backtracking's complete search would reject as infeasible.
TEST(Pruned, EnergyEqualsExhaustiveOnSmallFuzzTables) {
  std::size_t covered = 0;
  for (std::uint64_t seed = 1; covered < 200; ++seed) {
    const auto spec = testing::TableSpec::random(seed);
    const auto cc = spec.build();
    if (cc.rows() * cc.cols() > 24) continue;
    ++covered;
    const auto pr = search_pruned(cc, spec.cores);
    const auto ex = search_exhaustive(cc, spec.cores);
    ASSERT_EQ(pr.found, ex.found) << "seed=" << seed;
    if (!pr.found) continue;
    EXPECT_TRUE(tuple_is_valid(cc, pr.tuple, spec.cores))
        << "seed=" << seed;
    const double e_pr = tuple_energy_estimate(cc, pr.tuple, spec.cores);
    const double e_ex = tuple_energy_estimate(cc, ex.tuple, spec.cores);
    EXPECT_NEAR(e_pr, e_ex, 1e-9 + 1e-9 * std::abs(e_ex))
        << "seed=" << seed;
  }
}

TEST(Pruned, NeverReturnsTupleBacktrackingWouldReject) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto spec = testing::TableSpec::random(seed);
    const auto cc = spec.build();
    const auto pr = search_pruned(cc, spec.cores);
    const auto bt = search_backtracking(cc, spec.cores);
    // Backtracking is a complete feasibility search: if it proves the
    // lattice empty, pruned must not claim a tuple (and vice versa).
    ASSERT_EQ(pr.found, bt.found) << "seed=" << seed;
    if (pr.found) {
      EXPECT_TRUE(tuple_is_valid(cc, pr.tuple, spec.cores))
          << "seed=" << seed;
    }
  }
}

TEST(Pruned, DocumentedTieBreakAtProductionWidth) {
  // k=256 columns of identical demand at both rungs: every nondecreasing
  // tuple has the same demand and proxy energy, so the documented
  // tie-break (fewest cores, then the lexicographically greater tuple)
  // must select the all-slowest tuple — deterministically, at full
  // production width.
  const std::size_t k = 256;
  std::vector<std::vector<double>> rows(2, std::vector<double>(k, 1.0));
  const auto cc = CCTable::from_matrix(rows);
  const auto pr = search_pruned(cc, k);
  ASSERT_TRUE(pr.found);
  EXPECT_EQ(pr.tuple, std::vector<std::size_t>(k, 1));
  EXPECT_EQ(pr.cores_used, k);
}

TEST(Pruned, WidenedAccumulatorSurvivesExtremeMagnitudeSpread) {
  // One enormous column followed by 255 tiny ones: a plain double
  // running sum of demands loses the tiny contributions entirely
  // (1e12 + 1e-4 == 1e12 in double), which would let the searcher claim
  // ~0.026 cores of demand never happened and admit an over-capacity
  // tuple. The long double accumulator keeps them.
  const std::size_t k = 256;
  std::vector<std::vector<double>> rows(1, std::vector<double>(k, 1e-4));
  rows[0][0] = 1e12;
  const auto cc = CCTable::from_matrix(rows);
  // Capacity exactly the true demand, rounded up: feasible.
  const double true_demand = 1e12 + 255.0 * 1e-4;
  const auto ok = search_pruned(cc, static_cast<std::size_t>(
                                        std::ceil(true_demand)));
  EXPECT_TRUE(ok.found);
  // Capacity 1e12 exactly: the 255 tiny columns overflow it. A naive
  // double accumulator absorbs them and wrongly reports feasible.
  const auto over = search_pruned(
      cc, static_cast<std::size_t>(1e12));
  EXPECT_FALSE(over.found);
  EXPECT_FALSE(
      search_backtracking(cc, static_cast<std::size_t>(1e12)).found);
  EXPECT_FALSE(tuple_is_valid(cc, std::vector<std::size_t>(k, 0),
                              static_cast<std::size_t>(1e12)));
}

TEST(Backtracking, NodeBudgetAbortsAndReportsIt) {
  // A 1-node budget cannot even place the first class.
  const auto res = search_backtracking(fig3(), 16, 1);
  EXPECT_FALSE(res.found);
  EXPECT_TRUE(res.aborted);
  // An ample budget completes and is not marked aborted.
  const auto full = search_backtracking(fig3(), 16, 1'000'000);
  EXPECT_TRUE(full.found);
  EXPECT_FALSE(full.aborted);
  EXPECT_EQ(full.tuple, search_backtracking(fig3(), 16).tuple);
}

// ------------------------------------------------------ suffix search --

TEST(SuffixSearch, KeepsPrefixVerbatimAndSplicesOptimalSuffix) {
  const auto cc = fig3();
  // Pin class 0 at rung 1 (its full-search choice) — the suffix search
  // must reproduce the full pruned result.
  const auto full = search_pruned(cc, 16);
  ASSERT_TRUE(full.found);
  const std::vector<std::size_t> prefix{full.tuple[0], full.tuple[1]};
  const auto sfx = search_suffix(cc, 16, SearchKind::kPruned, prefix);
  ASSERT_TRUE(sfx.found);
  EXPECT_EQ(sfx.tuple[0], prefix[0]);
  EXPECT_EQ(sfx.tuple[1], prefix[1]);
  EXPECT_NEAR(tuple_energy_estimate(cc, sfx.tuple, 16),
              tuple_energy_estimate(cc, full.tuple, 16), 1e-9);
}

TEST(SuffixSearch, RespectsNondecreasingConstraintFromPrefix) {
  const auto cc = fig3();
  // Pin class 0 at the slowest rung: every suffix class must sit at
  // rung >= 3 or the search must fail — it cannot dip below the prefix.
  const std::vector<std::size_t> prefix{3};
  const auto sfx = search_suffix(cc, 100, SearchKind::kPruned, prefix);
  ASSERT_TRUE(sfx.found);
  for (const std::size_t rung : sfx.tuple) EXPECT_GE(rung, 3u);
}

TEST(SuffixSearch, RejectsInvalidPrefix) {
  const auto cc = fig3();
  // Over capacity: rung 3 for class 1 needs 12 of 6 cores.
  EXPECT_FALSE(
      search_suffix(cc, 6, SearchKind::kPruned, {0, 3}).found);
  // Out of rung range.
  EXPECT_FALSE(
      search_suffix(cc, 16, SearchKind::kPruned, {9}).found);
  // All four kinds agree on rejection.
  for (const auto kind :
       {SearchKind::kBacktracking, SearchKind::kGreedy,
        SearchKind::kExhaustive, SearchKind::kPruned}) {
    EXPECT_FALSE(search_suffix(cc, 6, kind, {0, 3}).found);
  }
}

TEST(SuffixSearch, FullLengthPrefixEvaluatesAsIs) {
  const auto cc = fig3();
  const std::vector<std::size_t> prefix{1, 1, 2, 2};
  const auto sfx = search_suffix(cc, 16, SearchKind::kPruned, prefix);
  ASSERT_TRUE(sfx.found);
  EXPECT_EQ(sfx.tuple, prefix);
  EXPECT_EQ(sfx.cores_used, 16u);
}

// ------------------------------------------------ randomized properties --

struct RandomCase {
  std::size_t r, k, cores;
  std::uint64_t seed;
};

class RandomizedSearch : public ::testing::TestWithParam<RandomCase> {};

CCTable random_table(const RandomCase& rc) {
  util::Xoshiro256 rng(rc.seed);
  // Build descending frequencies, then the exact CC scaling structure.
  std::vector<double> slowdown(rc.r, 1.0);
  for (std::size_t j = 1; j < rc.r; ++j) {
    slowdown[j] = slowdown[j - 1] * rng.uniform(1.1, 1.8);
  }
  std::vector<std::vector<double>> rows(rc.r, std::vector<double>(rc.k));
  for (std::size_t i = 0; i < rc.k; ++i) {
    const double base = rng.uniform(0.2, 4.0);
    for (std::size_t j = 0; j < rc.r; ++j) {
      rows[j][i] = base * slowdown[j];
    }
  }
  return CCTable::from_matrix(rows);
}

TEST_P(RandomizedSearch, FoundTuplesSatisfyAllConstraints) {
  const auto rc = GetParam();
  const auto cc = random_table(rc);
  const auto res = search_backtracking(cc, rc.cores);
  if (res.found) {
    EXPECT_TRUE(tuple_is_valid(cc, res.tuple, rc.cores));
    EXPECT_LE(res.cores_used, rc.cores);
  }
}

TEST_P(RandomizedSearch, BacktrackingFindsWheneverExhaustiveDoes) {
  const auto rc = GetParam();
  const auto cc = random_table(rc);
  const auto e = search_exhaustive(cc, rc.cores);
  const auto b = search_backtracking(cc, rc.cores);
  EXPECT_EQ(b.found, e.found);
}

TEST_P(RandomizedSearch, ExhaustiveEnergyIsMinimal) {
  const auto rc = GetParam();
  const auto cc = random_table(rc);
  const auto e = search_exhaustive(cc, rc.cores);
  const auto b = search_backtracking(cc, rc.cores);
  if (e.found && b.found) {
    EXPECT_LE(tuple_energy_estimate(cc, e.tuple, rc.cores),
              tuple_energy_estimate(cc, b.tuple, rc.cores) + 1e-9);
  }
}

TEST_P(RandomizedSearch, GreedySuccessImpliesBacktrackingSuccess) {
  const auto rc = GetParam();
  const auto cc = random_table(rc);
  const auto g = search_greedy(cc, rc.cores);
  if (g.found) {
    EXPECT_TRUE(search_backtracking(cc, rc.cores).found);
    EXPECT_TRUE(tuple_is_valid(cc, g.tuple, rc.cores));
  }
}

std::vector<RandomCase> random_cases() {
  std::vector<RandomCase> cases;
  std::uint64_t seed = 1;
  for (std::size_t r : {2u, 3u, 4u, 6u}) {
    for (std::size_t k : {1u, 2u, 3u, 5u}) {
      for (std::size_t cores : {4u, 16u, 64u}) {
        cases.push_back(RandomCase{r, k, cores, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomizedSearch,
                         ::testing::ValuesIn(random_cases()),
                         [](const auto& info) {
                           const auto& p = info.param;
                           return "r" + std::to_string(p.r) + "k" +
                                  std::to_string(p.k) + "m" +
                                  std::to_string(p.cores);
                         });

}  // namespace
}  // namespace eewa::core
