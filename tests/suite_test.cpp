// Tests for the benchmark suite: Table II coverage, kernel execution,
// calibration, trace building, and real-batch materialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workloads/suite.hpp"

namespace eewa::wl {
namespace {

TEST(Suite, CoversAllSevenPaperBenchmarks) {
  const auto& all = suite();
  ASSERT_EQ(all.size(), 7u);
  const char* expected[] = {"BWC", "Bzip-2", "DMC", "JE",
                            "LZW", "MD5",    "SHA-1"};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
    EXPECT_FALSE(all[i].classes.empty());
    EXPECT_FALSE(all[i].description.empty());
  }
}

TEST(Suite, BatchesLaunchManyTasks) {
  // Dozens of tasks per batch (the paper suggests "many, e.g. 128"; our
  // mixes use coarse critical-path blocks plus fine filler, so counts
  // land lower while preserving the underutilization its Fig. 3 shows).
  for (const auto& b : suite()) {
    std::size_t tasks = 0;
    for (const auto& c : b.classes) tasks += c.tasks_per_batch;
    EXPECT_GE(tasks, 24u) << b.name;
    EXPECT_LE(tasks, 160u) << b.name;
  }
}

TEST(Suite, FindBenchmarkLookup) {
  EXPECT_EQ(find_benchmark("MD5").name, "MD5");
  EXPECT_THROW(find_benchmark("nope"), std::invalid_argument);
}

TEST(Suite, RunKernelExecutesEveryKind) {
  for (const auto& b : suite()) {
    for (const auto& c : b.classes) {
      EXPECT_NO_THROW(run_kernel(c.kernel, 2048, 1)) << c.class_name;
    }
  }
}

TEST(Suite, RunKernelDeterministicInSeed) {
  const auto a = run_kernel(KernelKind::kSha1Hash, 4096, 5);
  const auto b = run_kernel(KernelKind::kSha1Hash, 4096, 5);
  const auto c = run_kernel(KernelKind::kSha1Hash, 4096, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Suite, CalibrationProducesPositiveCosts) {
  const auto cal = calibrate(/*sample_bytes=*/4096, /*reps=*/1);
  ASSERT_EQ(cal.ns_per_byte.size(), 9u);
  for (const auto& [k, ns] : cal.ns_per_byte) {
    EXPECT_GT(ns, 0.0);
  }
  // Hashing is at least an order of magnitude cheaper per byte than the
  // BWT-based compressors.
  EXPECT_LT(cal.ns_per_byte.at(KernelKind::kSha1Hash),
            cal.ns_per_byte.at(KernelKind::kBzCompress));
}

TEST(Suite, ReferenceCalibrationCoversAllKernels) {
  const auto cal = reference_calibration();
  EXPECT_EQ(cal.ns_per_byte.size(), 9u);
  EXPECT_GT(cal.cost_s(KernelKind::kMd5Hash, 1e6), 0.0);
}

TEST(Suite, BuildTraceShapesMatchDefinition) {
  const auto& bench = find_benchmark("JE");
  const auto trace = build_trace(bench, reference_calibration(), 4, 9);
  EXPECT_EQ(trace.name, "JE");
  EXPECT_EQ(trace.batch_count(), 4u);
  EXPECT_EQ(trace.class_names.size(), bench.classes.size());
  std::size_t expected = 0;
  for (const auto& c : bench.classes) expected += c.tasks_per_batch;
  EXPECT_EQ(trace.batches[0].tasks.size(), expected);
  EXPECT_NO_THROW(trace.validate());
}

TEST(Suite, BuildTraceDeterministic) {
  const auto& bench = find_benchmark("MD5");
  const auto cal = reference_calibration();
  const auto a = build_trace(bench, cal, 2, 7);
  const auto b = build_trace(bench, cal, 2, 7);
  EXPECT_DOUBLE_EQ(a.batches[0].tasks[0].work_s,
                   b.batches[0].tasks[0].work_s);
}

TEST(Suite, SkewedBenchmarksHaveHighVariance) {
  const auto cal = reference_calibration();
  auto cv_of = [&](const char* name) {
    const auto t = build_trace(find_benchmark(name), cal, 1, 3);
    double sum = 0, sum2 = 0;
    for (const auto& task : t.batches[0].tasks) {
      sum += task.work_s;
      sum2 += task.work_s * task.work_s;
    }
    const double n = static_cast<double>(t.batches[0].tasks.size());
    const double mean = sum / n;
    return std::sqrt(std::max(0.0, sum2 / n - mean * mean)) / mean;
  };
  EXPECT_GT(cv_of("MD5"), cv_of("DMC"));
}

TEST(Suite, MakeBatchProducesRunnableTasks) {
  const auto& bench = find_benchmark("SHA-1");
  auto tasks = make_batch(bench, 0, 11);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(tasks[0].class_name, "sha1_large_file");
  EXPECT_GE(tasks[0].bytes, 64u);
  EXPECT_NO_THROW(tasks[0].run());
}

TEST(Suite, MakeBatchDeterministicPerBatchIndex) {
  const auto& bench = find_benchmark("LZW");
  const auto a = make_batch(bench, 0, 5);
  const auto b = make_batch(bench, 0, 5);
  const auto c = make_batch(bench, 1, 5);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].bytes, b[0].bytes);
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    any_diff = any_diff || a[i].bytes != c[i].bytes;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace eewa::wl
