// Heterogeneous core types: topology flattening, typed CC tables, typed
// k-tuple search under per-type capacities, typed plan carving and
// reconciliation, the typed simulator, and the memory-aware-path bug
// sweep regressions (per-batch gate re-evaluation, from_matrix ordering
// validation, zero-alpha bitwise identity, alpha-estimate hardening).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/actuation.hpp"
#include "core/cc_table.hpp"
#include "core/classifier.hpp"
#include "core/core_type.hpp"
#include "core/eewa_controller.hpp"
#include "core/frequency_plan.hpp"
#include "core/ktuple_search.hpp"
#include "dvfs/frequency_ladder.hpp"
#include "sim/fleet.hpp"
#include "sim/machine.hpp"
#include "sim/policies.hpp"
#include "trace/arrivals.hpp"
#include "sim/simulate.hpp"
#include "testing/fuzz.hpp"
#include "trace/synthetic.hpp"

namespace eewa {
namespace {

using core::CCTable;
using core::ClassProfile;
using core::CoreType;
using core::MachineTopology;

const dvfs::FrequencyLadder kOpteron = dvfs::FrequencyLadder::opteron8380();

MachineTopology proxy_big_little() {
  // big.LITTLE without power models: exercises the speed-proxy path.
  CoreType big;
  big.name = "big";
  big.ladder = kOpteron;
  big.mips_scale = {1.0, 1.0, 1.0, 1.0};
  big.count = 4;
  CoreType little;
  little.name = "LITTLE";
  little.ladder = dvfs::FrequencyLadder({1.6, 1.2, 0.9, 0.6});
  little.mips_scale = {0.6, 0.6, 0.6, 0.6};
  little.count = 4;
  return MachineTopology({std::move(big), std::move(little)});
}

TEST(MachineTopology, BigLittlePresetFlattensBySpeed) {
  const auto topo = MachineTopology::big_little();
  EXPECT_EQ(topo.type_count(), 2u);
  EXPECT_EQ(topo.total_cores(), 8u);
  EXPECT_EQ(topo.row_count(), 8u);
  EXPECT_TRUE(topo.uniform_rung_count());
  EXPECT_TRUE(topo.has_power_models());
  EXPECT_EQ(topo.max_rungs(), 4u);

  // Interleaved speeds: 2.5, 1.8, 1.3, 0.96, 0.8, 0.72, 0.54, 0.36.
  const double expect[] = {2.5, 1.8, 1.3, 0.96, 0.8, 0.72, 0.54, 0.36};
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(topo.row_speed(j), expect[j], 1e-12) << "row " << j;
    EXPECT_EQ(topo.row_of(topo.row_type(j), topo.row_rung(j)), j);
  }
  EXPECT_DOUBLE_EQ(topo.row_slowdown(0), 1.0);
  // LITTLE's fastest rung (1.6 GHz * 0.6 = 0.96) sits at row 3.
  EXPECT_EQ(topo.row_type(3), 1u);
  EXPECT_EQ(topo.row_rung(3), 0u);

  // Core ids are contiguous per type: big owns [0,4), LITTLE [4,8).
  EXPECT_EQ(topo.first_core(0), 0u);
  EXPECT_EQ(topo.first_core(1), 4u);
  EXPECT_EQ(topo.type_of_core(3), 0u);
  EXPECT_EQ(topo.type_of_core(4), 1u);
  EXPECT_NEAR(topo.core_slowdown(4, 0), 2.5 / 0.96, 1e-12);
  EXPECT_EQ(topo.slowest_row_of_type(0), 4u);  // big @ 0.8 GHz
  EXPECT_EQ(topo.slowest_row_of_type(1), 7u);  // LITTLE @ 0.6 GHz
}

TEST(MachineTopology, ValidationRejectsMalformedTypes) {
  EXPECT_THROW(MachineTopology({}), std::invalid_argument);

  CoreType zero;
  zero.ladder = kOpteron;
  zero.mips_scale = {1.0, 1.0, 1.0, 1.0};
  zero.count = 0;
  EXPECT_THROW(MachineTopology({zero}), std::invalid_argument);

  CoreType ragged;
  ragged.ladder = kOpteron;
  ragged.mips_scale = {1.0, 1.0};  // ladder has 4 rungs
  ragged.count = 2;
  EXPECT_THROW(MachineTopology({ragged}), std::invalid_argument);

  CoreType nonpos;
  nonpos.ladder = kOpteron;
  nonpos.mips_scale = {1.0, 1.0, 0.0, 1.0};
  nonpos.count = 2;
  EXPECT_THROW(MachineTopology({nonpos}), std::invalid_argument);

  // Effective speed must strictly decrease across a type's rungs: a
  // rising MIPS scale can invert it even on a descending ladder.
  CoreType inverted;
  inverted.ladder = dvfs::FrequencyLadder({2.0, 1.0});
  inverted.mips_scale = {1.0, 2.1};
  inverted.count = 2;
  EXPECT_THROW(MachineTopology({inverted}), std::invalid_argument);

  // Models are all-or-none across types.
  CoreType with_model;
  with_model.ladder = kOpteron;
  with_model.mips_scale = {1.0, 1.0, 1.0, 1.0};
  with_model.model = std::make_shared<energy::PowerModel>(
      energy::PowerModel::opteron8380_server());
  with_model.count = 2;
  CoreType without_model;
  without_model.ladder = kOpteron;
  without_model.mips_scale = {1.0, 1.0, 1.0, 1.0};
  without_model.count = 2;
  EXPECT_THROW(MachineTopology({with_model, without_model}),
               std::invalid_argument);

  // A model's ladder must match its type's.
  CoreType mismatched;
  mismatched.ladder = dvfs::FrequencyLadder({2.0, 1.0});
  mismatched.mips_scale = {1.0, 1.0};
  mismatched.model = std::make_shared<energy::PowerModel>(
      energy::PowerModel::opteron8380_server());
  mismatched.count = 2;
  EXPECT_THROW(MachineTopology({mismatched}), std::invalid_argument);
}

std::vector<ClassProfile> two_classes() {
  return {{0, "heavy", 8, 2.0}, {1, "light", 16, 0.5}};
}

TEST(TypedCCTable, HomogeneousTopologyReproducesBuildBitwise) {
  const auto topo = MachineTopology::homogeneous("h", kOpteron, 16);
  const auto typed = CCTable::build_typed(two_classes(), topo, 4.0);
  const auto hom = CCTable::build(two_classes(), kOpteron, 4.0);
  ASSERT_EQ(typed.rows(), hom.rows());
  ASSERT_EQ(typed.cols(), hom.cols());
  ASSERT_NE(typed.topology(), nullptr);
  EXPECT_EQ(hom.topology(), nullptr);
  for (std::size_t j = 0; j < typed.rows(); ++j) {
    for (std::size_t i = 0; i < typed.cols(); ++i) {
      EXPECT_EQ(typed.at(j, i), hom.at(j, i)) << j << "," << i;
    }
  }
}

TEST(TypedCCTable, RowsScaleByEffectiveSlowdown) {
  const auto topo = proxy_big_little();
  const auto cc = CCTable::build_typed(two_classes(), topo, 4.0);
  ASSERT_EQ(cc.rows(), 8u);
  for (std::size_t j = 0; j < cc.rows(); ++j) {
    for (std::size_t i = 0; i < cc.cols(); ++i) {
      EXPECT_NEAR(cc.at(j, i), topo.row_slowdown(j) * cc.at(0, i), 1e-9)
          << j << "," << i;
    }
  }
}

TEST(TypedCCTable, MemoryAwareRowsUsePerClassAlpha) {
  auto classes = two_classes();
  classes[0].mean_alpha = 0.6;  // heavy class mostly memory-stalled
  const auto topo = proxy_big_little();
  const auto cc = CCTable::build_typed(classes, topo, 4.0, true);
  for (std::size_t j = 1; j < cc.rows(); ++j) {
    const double s = topo.row_slowdown(j);
    EXPECT_NEAR(cc.at(j, 0), (0.6 + 0.4 * s) * cc.at(0, 0), 1e-9);
    EXPECT_NEAR(cc.at(j, 1), s * cc.at(0, 1), 1e-9);
  }
}

TEST(TypedSearch, MatchesExhaustiveOnBigLittle) {
  // 8 rows x 3 classes = 24 <= 25: the exhaustive gate the fuzz oracle
  // uses; pruned must match ground-truth energy exactly.
  const auto topo = proxy_big_little();
  std::vector<ClassProfile> classes = {
      {0, "a", 6, 1.0, 1.2}, {1, "b", 8, 0.5, 0.6}, {2, "c", 10, 0.2, 0.3}};
  const auto cc = CCTable::build_typed(classes, topo, 4.0);
  const std::size_t m = topo.total_cores();
  const auto pr = core::search_pruned(cc, m);
  const auto ex = core::search_exhaustive(cc, m);
  ASSERT_EQ(pr.found, ex.found);
  ASSERT_TRUE(pr.found);
  EXPECT_TRUE(core::tuple_is_valid(cc, pr.tuple, m));
  EXPECT_NEAR(core::tuple_energy_estimate(cc, pr.tuple, m),
              core::tuple_energy_estimate(cc, ex.tuple, m), 1e-9);
}

TEST(TypedSearch, PerTypeCapacityBindsBeforeGlobal) {
  // One fast core + eight slow cores: the global budget (9 cores) would
  // admit parking both classes on the fast cluster, but its pool holds
  // a single core. Every searcher must respect the per-type cap.
  CoreType fast;
  fast.name = "fast";
  fast.ladder = dvfs::FrequencyLadder({3.0});
  fast.mips_scale = {1.0};
  fast.count = 1;
  CoreType slow;
  slow.name = "slow";
  slow.ladder = dvfs::FrequencyLadder({1.5});
  slow.mips_scale = {1.0};
  slow.count = 8;
  const MachineTopology topo({fast, slow});

  // Each class needs ~2 fast cores' worth of work.
  std::vector<ClassProfile> classes = {{0, "a", 4, 0.5}, {1, "b", 4, 0.5}};
  const auto cc = CCTable::build_typed(classes, topo, 1.0);
  const std::size_t m = topo.total_cores();
  for (const auto kind :
       {core::SearchKind::kBacktracking, core::SearchKind::kGreedy,
        core::SearchKind::kPruned, core::SearchKind::kExhaustive}) {
    const auto res = core::search_ktuple(cc, m, kind);
    ASSERT_TRUE(res.found);
    long double fast_used = 0.0L;
    for (std::size_t i = 0; i < res.tuple.size(); ++i) {
      if (topo.row_type(res.tuple[i]) == 0) {
        fast_used += cc.demand(res.tuple[i], i);
      }
    }
    EXPECT_LE(static_cast<double>(fast_used), 1.0 + 1e-9);
    EXPECT_TRUE(core::tuple_is_valid(cc, res.tuple, m));
  }
}

TEST(TypedPlan, CarvesEachTypeWithinItsCoreRange) {
  const auto topo = proxy_big_little();
  std::vector<ClassProfile> classes = {
      {0, "a", 6, 1.0, 1.2}, {1, "b", 8, 0.5, 0.6}, {2, "c", 10, 0.2, 0.3}};
  const auto cc = CCTable::build_typed(classes, topo, 4.0);
  const std::size_t m = topo.total_cores();
  const auto pr = core::search_pruned(cc, m);
  ASSERT_TRUE(pr.found);
  const auto plan = core::make_frequency_plan(cc, pr, m, kOpteron, 3);
  ASSERT_TRUE(plan.planned);
  ASSERT_EQ(plan.layout.total_cores(), m);
  std::size_t covered = 0;
  for (std::size_t g = 0; g < plan.layout.group_count(); ++g) {
    const auto& grp = plan.layout.group(g);
    covered += grp.cores.size();
    ASSERT_LT(grp.core_type, topo.type_count());
    EXPECT_LT(grp.freq_index, topo.type(grp.core_type).ladder.size());
    const std::size_t lo = topo.first_core(grp.core_type);
    const std::size_t hi = lo + topo.type(grp.core_type).count;
    for (const std::size_t c : grp.cores) {
      EXPECT_GE(c, lo);
      EXPECT_LT(c, hi);
    }
  }
  EXPECT_EQ(covered, m);
  for (std::size_t c = 0; c < m; ++c) {
    EXPECT_TRUE(plan.layout.core_assigned(c)) << "core " << c;
  }
}

TEST(TypedReconcile, KeepsCoreTypesInSeparateGroups) {
  // Intended: both clusters at their own rung 0. Cores 1 (big) and 3
  // (LITTLE) drift to rung 1. The reconciled layout must key groups by
  // (type, rung) — rung 1 big and rung 1 LITTLE are different operating
  // points and may not merge.
  core::FrequencyPlan intended;
  intended.planned = true;
  intended.layout = dvfs::CGroupLayout(
      {dvfs::CGroup{.freq_index = 0, .core_type = 0, .cores = {0, 1}},
       dvfs::CGroup{.freq_index = 0, .core_type = 1, .cores = {2, 3}}},
      {0, 1}, 4);
  const auto fixed = core::reconcile_plan(intended, {0, 1, 0, 1});
  ASSERT_EQ(fixed.layout.group_count(), 4u);
  for (std::size_t g = 0; g < fixed.layout.group_count(); ++g) {
    EXPECT_EQ(fixed.layout.group(g).cores.size(), 1u);
  }
  // Classes stay on their own cluster: class 0 intended (type 0, rung
  // 0) keeps a type-0 group, class 1 a type-1 group.
  const auto& g0 = fixed.layout.group(fixed.layout.group_of_class(0));
  const auto& g1 = fixed.layout.group(fixed.layout.group_of_class(1));
  EXPECT_EQ(g0.core_type, 0u);
  EXPECT_EQ(g0.freq_index, 0u);
  EXPECT_EQ(g1.core_type, 1u);
  EXPECT_EQ(g1.freq_index, 0u);
}

TEST(MemoryGate, ReEvaluatesEveryBatchWithHysteresis) {
  core::ControllerOptions opts;
  opts.memory_gate_hysteresis = 2;
  core::EewaController ctl(kOpteron, 4, opts);
  const auto id = ctl.class_id("c");
  const auto run_batch = [&](double cmi) {
    ctl.begin_batch();
    for (int i = 0; i < 10; ++i) {
      ctl.record_task(id, 0.01, 0, cmi, core::estimate_alpha_from_cmi(cmi));
    }
    ctl.end_batch(0.1);
  };

  run_batch(0.0);  // batch 0: compute-bound baseline
  EXPECT_FALSE(ctl.memory_bound_mode());
  EXPECT_EQ(ctl.memory_gate_flips(), 0u);

  // Phase 2 flips the verdict — but only after it persists hysteresis
  // (2) consecutive batches.
  run_batch(0.05);
  EXPECT_FALSE(ctl.memory_bound_mode()) << "one batch must not flip";
  run_batch(0.05);
  EXPECT_TRUE(ctl.memory_bound_mode());
  EXPECT_EQ(ctl.memory_gate_flips(), 1u);

  // Phase 3 goes compute-bound again: the gate un-trips and planning
  // resumes.
  run_batch(0.0);
  EXPECT_TRUE(ctl.memory_bound_mode());
  run_batch(0.0);
  EXPECT_FALSE(ctl.memory_bound_mode());
  EXPECT_EQ(ctl.memory_gate_flips(), 2u);
}

TEST(MemoryGate, OneNoisyBatchCannotBounceTheMode) {
  core::ControllerOptions opts;
  opts.memory_gate_hysteresis = 2;
  core::EewaController ctl(kOpteron, 4, opts);
  const auto id = ctl.class_id("c");
  const auto run_batch = [&](double cmi) {
    ctl.begin_batch();
    for (int i = 0; i < 10; ++i) ctl.record_task(id, 0.01, 0, cmi);
    ctl.end_batch(0.1);
  };
  run_batch(0.0);
  run_batch(0.05);  // noise
  run_batch(0.0);   // breaks the streak
  run_batch(0.05);  // noise again
  EXPECT_FALSE(ctl.memory_bound_mode());
  EXPECT_EQ(ctl.memory_gate_flips(), 0u);
}

TEST(FromMatrix, RejectsUnsortedClassMetadata) {
  std::vector<ClassProfile> unsorted = {{0, "light", 4, 0.5},
                                        {1, "heavy", 4, 2.0}};
  EXPECT_THROW(CCTable::from_matrix({{1.0, 2.0}, {2.0, 4.0}}, unsorted),
               std::invalid_argument);
  std::vector<ClassProfile> sorted = {{0, "heavy", 4, 2.0},
                                      {1, "light", 4, 0.5}};
  EXPECT_NO_THROW(CCTable::from_matrix({{2.0, 1.0}, {4.0, 2.0}}, sorted));
}

TEST(AlphaEstimate, ClampedAndMonotoneOnAdversarialCmi) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(core::estimate_alpha_from_cmi(nan), 0.0);
  EXPECT_EQ(core::estimate_alpha_from_cmi(-1.0), 0.0);
  EXPECT_EQ(core::estimate_alpha_from_cmi(0.0), 0.0);
  EXPECT_EQ(core::estimate_alpha_from_cmi(inf), 1.0);
  EXPECT_EQ(core::estimate_alpha_from_cmi(1e9), 1.0);
  // Degenerate saturation points saturate immediately.
  EXPECT_EQ(core::estimate_alpha_from_cmi(0.01, 0.0), 1.0);
  EXPECT_EQ(core::estimate_alpha_from_cmi(0.01, -1.0), 1.0);
  EXPECT_EQ(core::estimate_alpha_from_cmi(0.01, nan), 1.0);
  // Monotone and within [0, 1] over a grid.
  double prev = 0.0;
  for (double cmi = 0.0; cmi <= 0.1; cmi += 0.002) {
    const double a = core::estimate_alpha_from_cmi(cmi);
    EXPECT_GE(a, prev);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
    prev = a;
  }
}

trace::TaskTrace zero_alpha_trace() {
  trace::SyntheticSpec spec;
  spec.name = "zero_alpha";
  spec.seed = 7;
  spec.batches = 4;
  spec.classes = {{"h", 6, 400e-6, 0.2, 0.0, 0.0},
                  {"l", 12, 100e-6, 0.2, 0.0, 0.0}};
  return trace::generate(spec);
}

TEST(MemoryAwarePath, ZeroAlphaSimulationIsBitwiseIdentical) {
  // With every task's alpha at zero, memory_aware planning must change
  // nothing: same table, same plan, bitwise-identical simulated run.
  const auto trace = zero_alpha_trace();
  sim::SimOptions opts;
  opts.cores = 8;
  opts.fixed_adjuster_overhead_s = 50e-6;

  core::ControllerOptions on;
  on.adjuster.memory_aware = true;
  core::ControllerOptions off;
  off.adjuster.memory_aware = false;
  sim::EewaPolicy p_on({"h", "l"}, on);
  sim::EewaPolicy p_off({"h", "l"}, off);
  const auto r_on = sim::simulate(trace, p_on, opts);
  const auto r_off = sim::simulate(trace, p_off, opts);

  EXPECT_EQ(r_on.time_s, r_off.time_s);
  EXPECT_EQ(r_on.energy_j, r_off.energy_j);
  EXPECT_EQ(r_on.cpu_energy_j, r_off.cpu_energy_j);
  EXPECT_EQ(r_on.steals, r_off.steals);
  EXPECT_EQ(r_on.transitions, r_off.transitions);
  ASSERT_EQ(r_on.rung_residency_s.size(), r_off.rung_residency_s.size());
  for (std::size_t j = 0; j < r_on.rung_residency_s.size(); ++j) {
    EXPECT_EQ(r_on.rung_residency_s[j], r_off.rung_residency_s[j]);
  }
}

TEST(TypedMachine, ExecutesAndChargesPerCoreModels) {
  auto topo = std::make_shared<const MachineTopology>(
      MachineTopology::big_little());
  sim::SimOptions opts;
  opts.cores = 8;
  opts.topology = topo;
  opts.fixed_adjuster_overhead_s = 50e-6;
  sim::Machine m(opts);

  // Task execution scales by the core's type-relative slowdown: the
  // same task is slower on a LITTLE core at the same rung index.
  trace::TraceTask t;
  t.work_s = 1e-3;
  EXPECT_DOUBLE_EQ(m.exec_time_on(t, 0, 0), 1e-3);  // big @ row 0
  EXPECT_NEAR(m.exec_time_on(t, 4, 0), 1e-3 * (2.5 / 0.96), 1e-12);
  EXPECT_EQ(m.core_ladder_size(0), 4u);
  EXPECT_EQ(m.core_ladder_size(4), 4u);
  EXPECT_EQ(m.rung_axis_size(), 4u);

  // A full policy run completes and is deterministic.
  const auto trace = zero_alpha_trace();
  const auto r1 = sim::simulate_named(trace, "eewa", opts);
  const auto r2 = sim::simulate_named(trace, "eewa", opts);
  EXPECT_GT(r1.energy_j, 0.0);
  EXPECT_GT(r1.time_s, 0.0);
  EXPECT_EQ(r1.time_s, r2.time_s);
  EXPECT_EQ(r1.energy_j, r2.energy_j);
}

TEST(TypedMachine, ValidatesTopologyAgainstOptions) {
  auto topo = std::make_shared<const MachineTopology>(
      MachineTopology::big_little());
  sim::SimOptions wrong_cores;
  wrong_cores.cores = 16;  // topology has 8
  wrong_cores.topology = topo;
  EXPECT_THROW(sim::Machine{wrong_cores}, std::invalid_argument);

  auto proxy = std::make_shared<const MachineTopology>(proxy_big_little());
  sim::SimOptions no_models;
  no_models.cores = 8;
  no_models.topology = proxy;  // no per-type power models
  EXPECT_THROW(sim::Machine{no_models}, std::invalid_argument);
}

TEST(TypedFleet, BigLittleMachinesRunDeterministically) {
  // A fleet of big.LITTLE machines: the topology rides in through the
  // per-machine SimOptions and the whole FleetReport must stay bitwise
  // reproducible.
  auto topo = std::make_shared<const MachineTopology>(
      MachineTopology::big_little());
  sim::FleetOptions opts;
  opts.machines = 3;
  opts.machine.cores = topo->total_cores();
  opts.machine.topology = topo;

  trace::ArrivalSpec arrivals;
  arrivals.name = "hetero_mix";
  arrivals.classes = {{"h", 1.0, 400e-6, 0.2, 0.0, 0.0, 1},
                      {"l", 2.0, 100e-6, 0.2, 0.0, 0.0, 1}};
  arrivals.load = 0.5;
  arrivals.cores = opts.machines * opts.machine.cores;
  arrivals.duration_s = 0.2;
  arrivals.seed = 5;

  const auto r1 = sim::Fleet(opts, arrivals).run();
  const auto r2 = sim::Fleet(opts, arrivals).run();
  EXPECT_GT(r1.routed, 0u);
  EXPECT_EQ(r1.in_flight, 0u);
  EXPECT_GT(r1.energy_j, 0.0);
  EXPECT_TRUE(r1 == r2);
}

TEST(HeteroFuzz, SweepIsCleanAndShrinkable) {
  const auto sweep = testing::run_sweep(testing::FuzzMode::kHetero, 1, 64);
  EXPECT_EQ(sweep.ran, 64u);
  EXPECT_EQ(sweep.failed, 0u)
      << (sweep.failures.empty() ? "" : sweep.failures[0].failure);

  // The shrinker reaches a fixed point on a synthetic predicate: "has
  // more than one type" shrinks to exactly two types (dropping either
  // breaks the predicate, the one-type mutant stops failing).
  auto spec = testing::HeteroSpec::random(3);
  while (spec.types.size() < 2) {
    spec = testing::HeteroSpec::random(spec.seed + 1);
  }
  const auto shrunk = testing::shrink_hetero(
      spec,
      [](const testing::HeteroSpec& s) { return s.types.size() > 1; });
  EXPECT_EQ(shrunk.types.size(), 2u);
}

}  // namespace
}  // namespace eewa
