// Behavioral tests for the four simulator policies: Cilk keeps F0 and
// spins; Cilk-D parks idle cores at the bottom rung; WATS allocates by
// workload on a fixed asymmetric machine; EEWA plans frequencies and
// saves energy at matched performance — the paper's core claims on
// small, deterministic instances.
#include <gtest/gtest.h>

#include "sim/policies.hpp"
#include "sim/simulate.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace eewa::sim {
namespace {

SimOptions options16() {
  SimOptions opt;
  opt.cores = 16;
  opt.seed = 42;
  return opt;
}

// An imbalanced workload on 16 cores: 128 light-to-heavy tasks whose
// total work fills only part of the machine, as in the paper's setup.
trace::TaskTrace imbalanced_trace(std::size_t batches = 6) {
  return trace::bimodal(/*heavy_tasks=*/6, /*heavy_work_s=*/0.1,
                        /*light_tasks=*/122, /*light_work_s=*/0.004,
                        batches, /*seed=*/1234);
}

TEST(CilkSim, AllCoresStayAtF0) {
  auto t = imbalanced_trace(3);
  CilkPolicy p;
  const auto res = simulate(t, p, options16());
  for (const auto& b : res.batches) {
    EXPECT_EQ(b.cores_per_rung[0], 16u);
  }
  EXPECT_EQ(res.transitions, 0u);
  // All residency at the top rung.
  EXPECT_GT(res.rung_residency_s[0], 0.0);
  EXPECT_DOUBLE_EQ(res.rung_residency_s[3], 0.0);
}

TEST(CilkDSim, IdleCoresDropToBottomRung) {
  auto t = imbalanced_trace(3);
  CilkDPolicy p;
  const auto res = simulate(t, p, options16());
  EXPECT_GT(res.transitions, 0u);
  EXPECT_GT(res.rung_residency_s[3], 0.0);  // some parked time
}

TEST(CilkDSim, SavesEnergyVsCilkAtSimilarTime) {
  auto t = imbalanced_trace();
  CilkPolicy cilk;
  CilkDPolicy cilkd;
  const auto a = simulate(t, cilk, options16());
  const auto b = simulate(t, cilkd, options16());
  EXPECT_LT(b.energy_j, a.energy_j);
  // Cilk-D only changes idle spinning, not scheduling: perf within ~2%.
  EXPECT_NEAR(b.time_s / a.time_s, 1.0, 0.02);
}

TEST(EewaSim, FirstBatchAtF0ThenPlans) {
  auto t = imbalanced_trace(4);
  EewaPolicy p(t.class_names);
  const auto res = simulate(t, p, options16());
  ASSERT_GE(res.batches.size(), 2u);
  EXPECT_EQ(res.batches[0].cores_per_rung[0], 16u);  // measurement batch
  // Afterwards some cores run below F0.
  bool downclocked = false;
  for (std::size_t b = 1; b < res.batches.size(); ++b) {
    if (res.batches[b].cores_per_rung[0] < 16) downclocked = true;
  }
  EXPECT_TRUE(downclocked);
  EXPECT_TRUE(p.controller().plan().planned);
}

TEST(EewaSim, SavesEnergyVsCilkAndCilkD) {
  auto t = imbalanced_trace();
  CilkPolicy cilk;
  CilkDPolicy cilkd;
  EewaPolicy eewa(t.class_names);
  const auto a = simulate(t, cilk, options16());
  const auto b = simulate(t, cilkd, options16());
  const auto c = simulate(t, eewa, options16());
  EXPECT_LT(c.energy_j, a.energy_j);
  EXPECT_LT(c.energy_j, b.energy_j);
  // Performance degradation stays small (paper: 0.8%-3.7%).
  EXPECT_LT(c.time_s / a.time_s, 1.08);
}

TEST(EewaSim, BalancedWorkloadKeepsCoresFastAndPerformance) {
  // Fully loaded machine: no downclocking headroom, EEWA ~= Cilk.
  const auto t = trace::balanced(128, 0.02, 5, 77);
  CilkPolicy cilk;
  EewaPolicy eewa(t.class_names);
  const auto a = simulate(t, cilk, options16());
  const auto c = simulate(t, eewa, options16());
  EXPECT_NEAR(c.time_s / a.time_s, 1.0, 0.10);
  EXPECT_LT(c.energy_j, a.energy_j * 1.05);
}

TEST(EewaSim, MemoryBoundAppFallsBackToF0) {
  trace::SyntheticSpec spec;
  spec.classes = {{"mem_task", 64, 0.01, 0.1, /*cmi=*/0.1,
                   /*mem_alpha=*/0.8}};
  spec.batches = 4;
  spec.seed = 3;
  const auto t = trace::generate(spec);
  EewaPolicy p(t.class_names);
  const auto res = simulate(t, p, options16());
  EXPECT_TRUE(p.controller().memory_bound_mode());
  for (const auto& b : res.batches) {
    EXPECT_EQ(b.cores_per_rung[0], 16u);  // never left F0
  }
}

TEST(EewaSim, ModalRungsReflectsAppliedConfigs) {
  auto t = imbalanced_trace(5);
  EewaPolicy p(t.class_names);
  SimOptions opt = options16();
  Machine m(opt);
  double time = 0.0;
  for (const auto& batch : t.batches) {
    time = m.run_batch(p, batch, time);
  }
  const auto modal = p.modal_rungs(m);
  ASSERT_EQ(modal.size(), 16u);
  // The modal config is a real post-measurement config: not all F0.
  std::size_t at0 = 0;
  for (auto r : modal) at0 += (r == 0);
  EXPECT_LT(at0, 16u);
}

TEST(OndemandSim, StepsDownGraduallyAndSavesSomething) {
  // Long idle tails (tasks much shorter than the tail) let the reactive
  // governor walk down the ladder in sampling-interval steps.
  trace::TaskTrace t;
  t.name = "tail";
  t.class_names = {"c"};
  t.batches.resize(2);
  for (auto& b : t.batches) {
    b.tasks.push_back({0, 0.08, 0, 0, 0});  // one long task
    for (int i = 0; i < 8; ++i) b.tasks.push_back({0, 0.002, 0, 0, 0});
  }
  CilkPolicy cilk;
  OndemandPolicy ondemand;
  const auto opt = options16();
  const auto rc = simulate(t, cilk, opt);
  const auto ro = simulate(t, ondemand, opt);
  EXPECT_LT(ro.energy_j, rc.energy_j);
  // The walk-down visits intermediate rungs, not just F0 and Fmin.
  EXPECT_GT(ro.rung_residency_s[1] + ro.rung_residency_s[2], 0.0);
  EXPECT_NEAR(ro.time_s / rc.time_s, 1.0, 0.02);
}

TEST(OndemandSim, BetweenCilkAndCilkDOnEnergy) {
  const auto t = imbalanced_trace();
  CilkPolicy cilk;
  CilkDPolicy cilkd;
  OndemandPolicy ondemand;
  const auto opt = options16();
  const auto rc = simulate(t, cilk, opt);
  const auto rd = simulate(t, cilkd, opt);
  const auto ro = simulate(t, ondemand, opt);
  EXPECT_LT(ro.energy_j, rc.energy_j);       // beats always-max
  EXPECT_GE(ro.energy_j, rd.energy_j * 0.98);  // can't beat instant drop
}

TEST(WatsSim, RunsOnFixedAsymmetricMachine) {
  auto t = imbalanced_trace(4);
  // 4 fast cores, 12 slow cores.
  std::vector<std::size_t> rungs(16, 3);
  for (int c = 0; c < 4; ++c) rungs[static_cast<std::size_t>(c)] = 0;
  WatsPolicy p(rungs, t.class_names);
  const auto res = simulate(t, p, options16());
  for (std::size_t b = 1; b < res.batches.size(); ++b) {
    EXPECT_EQ(res.batches[b].cores_per_rung[0], 4u);
    EXPECT_EQ(res.batches[b].cores_per_rung[3], 12u);
  }
}

TEST(WatsSim, BeatsCilkOnAsymmetricMachine) {
  // The Fig. 7 shape: on a fixed AMC, random stealing pays a big tail
  // penalty when heavy tasks land on slow cores; WATS avoids it.
  trace::SyntheticSpec spec;
  spec.classes = {{"heavy", 8, 0.08, 0.1, 0, 0},
                  {"light", 120, 0.004, 0.1, 0, 0}};
  spec.batches = 6;
  spec.seed = 21;
  const auto t = trace::generate(spec);
  std::vector<std::size_t> rungs(16, 3);
  for (int c = 0; c < 5; ++c) rungs[static_cast<std::size_t>(c)] = 0;

  CilkPolicy cilk(rungs);
  WatsPolicy wats(rungs, t.class_names);
  const auto a = simulate(t, cilk, options16());
  const auto w = simulate(t, wats, options16());
  EXPECT_LT(w.time_s, a.time_s);
}

TEST(PolicySweep, AllPoliciesExecuteAllTasks) {
  // Smoke sweep over machine sizes: no policy loses or duplicates tasks
  // (the machine throws if a policy strands tasks).
  for (std::size_t cores : {2u, 4u, 8u, 16u}) {
    SimOptions opt;
    opt.cores = cores;
    opt.seed = cores;
    const auto t = trace::bimodal(3, 0.05, 29, 0.005, 3, cores);
    CilkPolicy cilk;
    CilkDPolicy cilkd;
    EewaPolicy eewa(t.class_names);
    std::vector<std::size_t> rungs(cores, 3);
    rungs[0] = 0;
    WatsPolicy wats(rungs, t.class_names);
    EXPECT_NO_THROW(simulate(t, cilk, opt));
    EXPECT_NO_THROW(simulate(t, cilkd, opt));
    EXPECT_NO_THROW(simulate(t, eewa, opt));
    EXPECT_NO_THROW(simulate(t, wats, opt));
  }
}

TEST(EewaSim, MoreCoresMoreSavings) {
  // Fig. 9's shape: the relative saving grows with the core count.
  const auto t = imbalanced_trace();
  auto saving = [&](std::size_t cores) {
    SimOptions opt;
    opt.cores = cores;
    opt.seed = 42;
    CilkPolicy cilk;
    EewaPolicy eewa(t.class_names);
    const auto a = simulate(t, cilk, opt);
    const auto c = simulate(t, eewa, opt);
    return 1.0 - c.energy_j / a.energy_j;
  };
  const double s4 = saving(4);
  const double s16 = saving(16);
  EXPECT_GT(s16, s4);
  EXPECT_GT(s16, 0.05);
}

// The indexed (tournament-tree) placement mode must return the same
// pick as the legacy linear scan on every call — same argmin/argmax,
// same ties-to-lowest-index rule — under epoch-style churn: views
// re-randomized per epoch (begin_epoch), then mutated pick-by-pick the
// way Fleet::run stages work and starts wakes (update).
TEST(FleetPlacement, IndexedModeMatchesLinearScan) {
  for (const char* name : {"least-loaded", "pack"}) {
    auto indexed = make_placement(name, 0.04);
    auto scan = make_placement(name, 0.04);
    util::Xoshiro256 rng(11);
    const std::size_t m = 23;  // not a power of two
    std::vector<MachineView> vi(m), vs(m);
    for (int epoch = 0; epoch < 40; ++epoch) {
      for (std::size_t i = 0; i < m; ++i) {
        MachineView v;
        v.powered = rng.chance(0.7);
        // Coarse grid => frequent exact ties, the risky case.
        v.backlog_s = 0.01 * std::floor(rng.uniform() * 8.0);
        v.sleep_state = v.powered ? 0 : (rng.uniform() < 0.5 ? 0 : 2);
        v.wake_latency_s = v.powered ? 0.0 : 0.001 * (v.sleep_state + 1);
        if (!v.powered) v.backlog_s = 0.0;
        vi[i] = vs[i] = v;
      }
      indexed->begin_epoch(vi);
      for (int task = 0; task < 64; ++task) {
        const double work = rng.uniform() * 0.01;
        const std::size_t a = indexed->place(work, vi);
        const std::size_t b = scan->place(work, vs);
        ASSERT_EQ(a, b) << name << " epoch " << epoch << " task " << task;
        for (auto* views : {&vi, &vs}) {
          auto& v = (*views)[a];
          if (!v.powered) {
            v.powered = true;
            v.backlog_s += v.wake_latency_s;
            v.wake_latency_s = 0.0;
            v.sleep_state = 0;
          }
          v.backlog_s += work / 4.0;
        }
        indexed->update(a, vi);
      }
    }
  }
}

}  // namespace
}  // namespace eewa::sim
