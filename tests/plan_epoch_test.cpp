// Plan publication atomicity (service mode). The planner swings one
// epoch pointer while workers keep reading; these tests check the
// structural invariants a reader may assume of any acquired snapshot
// (nondecreasing rung tuple, consistent group membership), that invalid
// snapshots are rejected *before* becoming visible, and that hazard-slot
// reclamation never frees a snapshot a reader still pins. The
// multi-threaded cases are the designated TSan targets.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/frequency_plan.hpp"
#include "dvfs/cgroup.hpp"
#include "runtime/plan_epoch.hpp"

namespace eewa::rt {
namespace {

// A two-group plan: `split` cores at rung r0, the rest at rung r1 > r0.
core::FrequencyPlan two_group_plan(std::size_t cores, std::size_t split,
                                   std::size_t classes, std::size_t r0,
                                   std::size_t r1) {
  std::vector<dvfs::CGroup> groups(2);
  groups[0].freq_index = r0;
  groups[1].freq_index = r1;
  for (std::size_t c = 0; c < cores; ++c) {
    (c < split ? groups[0] : groups[1]).cores.push_back(c);
  }
  std::vector<std::size_t> class_to_group(classes, 0);
  if (classes > 1) class_to_group[classes - 1] = 1;
  core::FrequencyPlan plan;
  plan.planned = true;
  plan.layout = dvfs::CGroupLayout(std::move(groups),
                                   std::move(class_to_group), cores);
  plan.tuple = {r0, r1};
  plan.claimed_cores = cores;
  return plan;
}

std::vector<std::size_t> rungs_of(const core::FrequencyPlan& plan,
                                  std::size_t cores) {
  std::vector<std::size_t> rungs(cores, 0);
  for (const auto& g : plan.layout.groups()) {
    for (std::size_t c : g.cores) {
      if (c < cores) rungs[c] = g.freq_index;
    }
  }
  return rungs;
}

TEST(PlanSnapshot, BuildUniformCoversEveryWorker) {
  const std::size_t workers = 4;
  auto plan = core::uniform_plan(workers, 2);
  auto snap = PlanSnapshot::build(1, plan, rungs_of(plan, workers), workers);
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->valid(workers));
  EXPECT_EQ(snap->epoch, 1u);
  ASSERT_EQ(snap->worker_group.size(), workers);
  ASSERT_EQ(snap->worker_rung.size(), workers);
  for (std::size_t w = 0; w < workers; ++w) {
    EXPECT_EQ(snap->worker_group[w], 0u);
    EXPECT_EQ(snap->worker_rung[w], 0u);
  }
}

TEST(PlanSnapshot, BuildClipsCoresBeyondWorkerCount) {
  // An 8-core plan driving a 4-worker runtime: cores 4..7 exist in the
  // layout but have no worker; every worker still lands in a group.
  const std::size_t workers = 4;
  auto plan = two_group_plan(8, 2, 3, 0, 2);
  auto snap = PlanSnapshot::build(5, plan, rungs_of(plan, workers), workers);
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->valid(workers));
  ASSERT_EQ(snap->group_workers.size(), 2u);
  EXPECT_EQ(snap->group_workers[0].size(), 2u);  // cores 0,1
  EXPECT_EQ(snap->group_workers[1].size(), 2u);  // cores 2,3 (4..7 clipped)
  for (std::size_t w = 0; w < workers; ++w) {
    EXPECT_EQ(snap->worker_group[w], w < 2 ? 0u : 1u);
  }
}

TEST(PlanSnapshot, AchievedRungOverridesPlannedRung) {
  // Actuation readback says worker 1 is stuck at rung 3; the snapshot
  // must carry the achieved rung (Eq. 1 normalization uses it), not the
  // planned one.
  const std::size_t workers = 2;
  auto plan = core::uniform_plan(workers, 1);
  std::vector<std::size_t> achieved = {0, 3};
  auto snap = PlanSnapshot::build(2, plan, achieved, workers);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->worker_rung[0], 0u);
  EXPECT_EQ(snap->worker_rung[1], 3u);
}

TEST(PlanSnapshot, ValidRejectsTornStructures) {
  const std::size_t workers = 4;
  auto plan = two_group_plan(workers, 2, 2, 1, 3);
  auto snap = PlanSnapshot::build(1, plan, rungs_of(plan, workers), workers);
  ASSERT_TRUE(snap->valid(workers));

  // Wrong worker_group size (torn against the worker count).
  auto broken = PlanSnapshot::build(1, plan, rungs_of(plan, workers), workers);
  broken->worker_group.resize(workers - 1);
  EXPECT_FALSE(broken->valid(workers));

  // Membership mismatch: worker 0 claims group 1 but group_workers says
  // group 0.
  broken = PlanSnapshot::build(1, plan, rungs_of(plan, workers), workers);
  broken->worker_group[0] = 1;
  EXPECT_FALSE(broken->valid(workers));

  // Decreasing rung tuple (groups must be fastest-first).
  broken = PlanSnapshot::build(1, plan, rungs_of(plan, workers), workers);
  std::swap(broken->plan.tuple[0], broken->plan.tuple[1]);
  EXPECT_FALSE(broken->valid(workers));
}

TEST(PlanSnapshot, ValidAcceptsInterleavedTypedRungs) {
  // On a heterogeneous layout groups are ordered by global effective
  // speed, so rungs of different types interleave: big@0, LITTLE@0,
  // big@3 is a legal plan. freq_index is only strictly increasing
  // *within* a type; valid() must not reject the interleaving.
  const std::size_t workers = 4;
  std::vector<dvfs::CGroup> groups = {
      dvfs::CGroup{.freq_index = 0, .core_type = 0, .cores = {0}},
      dvfs::CGroup{.freq_index = 0, .core_type = 1, .cores = {2, 3}},
      dvfs::CGroup{.freq_index = 3, .core_type = 0, .cores = {1}}};
  core::FrequencyPlan plan;
  plan.planned = true;
  plan.layout = dvfs::CGroupLayout(std::move(groups), {0, 1, 2}, workers);
  plan.tuple = {0, 3, 4};  // global rows, sorted ascending
  plan.claimed_cores = workers;
  auto snap = PlanSnapshot::build(1, plan, rungs_of(plan, workers), workers);
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->valid(workers));
}

TEST(PlanPublisher, RejectedSnapshotNeverBecomesVisible) {
  const std::size_t workers = 2;
  PlanPublisher pub(workers + 1, workers);  // runtime shape: +1 dispatcher
  auto plan = core::uniform_plan(workers, 1);
  auto good = PlanSnapshot::build(1, plan, rungs_of(plan, workers), workers);
  ASSERT_TRUE(pub.publish(std::move(good)));
  EXPECT_EQ(pub.epochs_published(), 1u);

  auto bad = PlanSnapshot::build(2, plan, rungs_of(plan, workers), workers);
  bad->worker_group.clear();  // structurally invalid
  EXPECT_FALSE(pub.publish(std::move(bad)));
  EXPECT_EQ(pub.publish_rejects(), 1u);
  EXPECT_EQ(pub.epochs_published(), 1u);
  // Readers still see the last good epoch.
  const PlanSnapshot* seen = pub.acquire(0);
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(seen->epoch, 1u);
  pub.release(0);
}

TEST(PlanPublisher, StampsMonotoneSeqAcrossSameEpochPublishes) {
  // Regression for the staleness-watchdog race: a slow-but-valid plan
  // and the degraded uniform-F0 snapshot are published under the SAME
  // planner epoch. A reader keying "new plan?" on the epoch would skip
  // the second publish and keep a rung the hardware no longer runs; the
  // publisher-stamped seq must distinguish them.
  const std::size_t workers = 2;
  PlanPublisher pub(workers, workers);
  auto plan = two_group_plan(workers, 1, 2, 0, 2);
  auto slow_plan =
      PlanSnapshot::build(7, plan, rungs_of(plan, workers), workers);
  ASSERT_TRUE(pub.publish(std::move(slow_plan)));
  const PlanSnapshot* first = pub.acquire(0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->seq, 1u);
  EXPECT_EQ(first->epoch, 7u);

  // Watchdog fires within the same epoch: uniform F0, same epoch id.
  auto safe = core::uniform_plan(workers, 2);
  auto degraded_snap =
      PlanSnapshot::build(7, safe, rungs_of(safe, workers), workers);
  degraded_snap->degraded = true;
  ASSERT_TRUE(pub.publish(std::move(degraded_snap)));
  const PlanSnapshot* second = pub.acquire(0);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->epoch, first->epoch);  // the race this pins down
  EXPECT_EQ(second->seq, 2u);              // ...still distinguishable
  EXPECT_TRUE(second->degraded);
  EXPECT_EQ(second->worker_rung[0], 0u);
  pub.release(0);
}

TEST(PlanPublisher, SeqZeroNeverPublished) {
  // seq 0 is the reader-side "nothing adopted yet" sentinel; the first
  // publish must already be 1.
  const std::size_t workers = 1;
  PlanPublisher pub(workers, workers);
  auto plan = core::uniform_plan(workers, 1);
  ASSERT_TRUE(pub.publish(
      PlanSnapshot::build(0, plan, rungs_of(plan, workers), workers)));
  const PlanSnapshot* snap = pub.acquire(0);
  EXPECT_EQ(snap->seq, 1u);
  pub.release(0);
}

TEST(PlanPublisher, RepeatAcquireReturnsSamePin) {
  const std::size_t workers = 1;
  PlanPublisher pub(workers, workers);
  auto plan = core::uniform_plan(workers, 1);
  ASSERT_TRUE(pub.publish(
      PlanSnapshot::build(1, plan, rungs_of(plan, workers), workers)));
  const PlanSnapshot* a = pub.acquire(0);
  const PlanSnapshot* b = pub.acquire(0);
  EXPECT_EQ(a, b);
  pub.release(0);
}

// The TSan target proper: a planner thread publishes hundreds of epochs
// (alternating group structures and rungs) while reader threads acquire
// continuously. Every acquired snapshot must be structurally whole — a
// torn mix of old and new state would trip valid() or the epoch
// monotonicity check — and snapshots must stay dereferenceable for as
// long as they are pinned (use-after-free here is what TSan/ASan watch).
TEST(PlanPublisher, ConcurrentReadersSeeOnlyWholeSnapshots) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kReaders = 4;
  constexpr std::uint64_t kEpochs = 400;
  PlanPublisher pub(kReaders, kWorkers);

  // Epoch 0 before readers start, as start_service does.
  auto p0 = core::uniform_plan(kWorkers, 2);
  ASSERT_TRUE(pub.publish(
      PlanSnapshot::build(0, p0, rungs_of(p0, kWorkers), kWorkers)));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_epoch = 0;
      std::uint64_t last_seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const PlanSnapshot* snap = pub.acquire(r);
        if (snap == nullptr || !snap->valid(kWorkers) ||
            snap->epoch < last_epoch || snap->seq < last_seq ||
            snap->seq == 0) {
          torn.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        last_epoch = snap->epoch;
        last_seq = snap->seq;
        // Walk the pinned snapshot: every field a worker actually uses.
        // A reclaimed-too-early snapshot makes this a use-after-free.
        std::size_t members = 0;
        for (const auto& g : snap->group_workers) members += g.size();
        if (members != kWorkers) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        for (std::size_t w = 0; w < kWorkers; ++w) {
          // Snapshots here are built with achieved == planned rungs, so
          // a worker's rung must match its group's rung; a torn mix of
          // layout and rung vector breaks this.
          const std::size_t g = snap->worker_group[w];
          if (g >= snap->group_workers.size() ||
              snap->worker_rung[w] != snap->plan.layout.freq_index(g)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      pub.release(r);
    });
  }

  for (std::uint64_t e = 1; e <= kEpochs; ++e) {
    // Alternate between one- and two-group structures so a torn read
    // would mix tuple sizes with group lists.
    core::FrequencyPlan plan =
        (e % 2) ? two_group_plan(kWorkers, 1 + e % (kWorkers - 1), 2,
                                 e % 3, 3 + e % 2)
                : core::uniform_plan(kWorkers, 2);
    ASSERT_TRUE(pub.publish(PlanSnapshot::build(
        e, plan, rungs_of(plan, kWorkers), kWorkers)))
        << "epoch " << e;
    // Retired list stays bounded by the pinned set, not the epoch count.
    EXPECT_LE(pub.retired_count(), kReaders + 1);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(pub.epochs_published(), kEpochs + 1);
}

// Readers that park (release their pin) must not block reclamation, and
// re-acquiring after a park must return a fresh, whole snapshot.
TEST(PlanPublisher, ReleaseUnblocksReclamation) {
  constexpr std::size_t kWorkers = 2;
  PlanPublisher pub(1, kWorkers);
  auto plan = core::uniform_plan(kWorkers, 1);
  ASSERT_TRUE(pub.publish(
      PlanSnapshot::build(0, plan, rungs_of(plan, kWorkers), kWorkers)));
  const PlanSnapshot* pinned = pub.acquire(0);
  ASSERT_EQ(pinned->epoch, 0u);

  // While pinned, the old snapshot survives a publish...
  ASSERT_TRUE(pub.publish(
      PlanSnapshot::build(1, plan, rungs_of(plan, kWorkers), kWorkers)));
  EXPECT_EQ(pinned->epoch, 0u);  // still dereferenceable
  EXPECT_GE(pub.retired_count(), 1u);

  // ...and after release + another publish the retired list drains.
  pub.release(0);
  ASSERT_TRUE(pub.publish(
      PlanSnapshot::build(2, plan, rungs_of(plan, kWorkers), kWorkers)));
  EXPECT_LE(pub.retired_count(), 1u);
  const PlanSnapshot* fresh = pub.acquire(0);
  EXPECT_EQ(fresh->epoch, 2u);
  pub.release(0);
}

}  // namespace
}  // namespace eewa::rt
