// Tests for the lock-free spawn hot path: TaskFn small-buffer semantics,
// TaskArena slab reuse, InternTable concurrency, deque ring reclamation,
// and — via a counting global allocator — the claim that steady-state
// spawn() performs zero heap allocations for captures <= kInlineSize.
// The concurrent cases double as TSan targets (see ci.yml's tsan job).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/intern_table.hpp"
#include "runtime/chase_lev_deque.hpp"
#include "runtime/runtime.hpp"
#include "runtime/task.hpp"

// ---------------------------------------------------------------------------
// Counting global allocator. Every scalar new in the binary bumps a global
// and a thread-local counter; the thread-local one lets a worker-side task
// measure exactly the allocations made on its own thread between two
// points, unpolluted by the control thread's batch bookkeeping.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
thread_local std::uint64_t tl_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  ++tl_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eewa {
namespace {

// ---------------------------------------------------------------------------
// TaskFn

TEST(TaskFn, SmallCaptureStaysInline) {
  std::array<char, 40> payload{};
  payload[0] = 7;
  int sink = 0;
  int* sink_ptr = &sink;
  const std::uint64_t fallbacks_before =
      rt::TaskFn::heap_fallbacks().load(std::memory_order_relaxed);
  const std::uint64_t allocs_before = tl_heap_allocs;
  rt::TaskFn fn([payload, sink_ptr] { *sink_ptr = payload[0]; });
  EXPECT_EQ(tl_heap_allocs, allocs_before) << "inline capture allocated";
  EXPECT_EQ(rt::TaskFn::heap_fallbacks().load(std::memory_order_relaxed),
            fallbacks_before);
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(sink, 7);
}

TEST(TaskFn, OversizedCaptureFallsBackToHeap) {
  std::array<char, rt::TaskFn::kInlineSize + 16> big{};
  big[0] = 42;
  int sink = 0;
  int* sink_ptr = &sink;
  const std::uint64_t fallbacks_before =
      rt::TaskFn::heap_fallbacks().load(std::memory_order_relaxed);
  rt::TaskFn fn([big, sink_ptr] { *sink_ptr = big[0]; });
  EXPECT_EQ(rt::TaskFn::heap_fallbacks().load(std::memory_order_relaxed),
            fallbacks_before + 1);
  fn();
  EXPECT_EQ(sink, 42);
}

TEST(TaskFn, MoveTransfersClosureAndEmptiesSource) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> alive = token;
  int sink = 0;
  int* sink_ptr = &sink;
  rt::TaskFn a([token, sink_ptr] { *sink_ptr = *token; });
  token.reset();
  EXPECT_FALSE(alive.expired());  // closure owns the last reference

  rt::TaskFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(sink, 5);

  rt::TaskFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(sink, 5);
  c = rt::TaskFn();
  EXPECT_TRUE(alive.expired()) << "destroying the TaskFn must run the "
                                  "capture's destructor";
}

// ---------------------------------------------------------------------------
// TaskArena

TEST(TaskArena, ReusesSlabsAcrossReset) {
  rt::TaskArena arena;
  std::atomic<int> runs{0};
  const std::size_t tasks = rt::TaskArena::kSlabTasks * 3 + 7;
  for (std::size_t i = 0; i < tasks; ++i) {
    arena.create(i, [&runs] { runs.fetch_add(1); });
  }
  EXPECT_EQ(arena.size(), tasks);
  const std::size_t slabs = arena.slab_count();
  EXPECT_EQ(slabs, 4u);

  arena.reset();
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.slab_count(), slabs) << "reset must keep slabs";

  // Refilling to the same depth must not allocate new slabs, and the
  // task addresses must be stable until the next reset.
  const std::uint64_t allocs_before = tl_heap_allocs;
  rt::Task* first = arena.create(0, [&runs] { runs.fetch_add(1); });
  for (std::size_t i = 1; i < tasks; ++i) {
    arena.create(i, [&runs] { runs.fetch_add(1); });
  }
  EXPECT_EQ(tl_heap_allocs, allocs_before);
  EXPECT_EQ(arena.slab_count(), slabs);
  first->fn();
  EXPECT_EQ(runs.load(), 1);
}

TEST(TaskArena, ResetRunsCaptureDestructors) {
  rt::TaskArena arena;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  arena.create(0, [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(alive.expired());
  arena.reset();
  EXPECT_TRUE(alive.expired());
}

// ---------------------------------------------------------------------------
// InternTable

TEST(InternTable, AssignsAndFindsIds) {
  core::InternTable table;
  std::size_t next = 0;
  EXPECT_EQ(table.find("a"), core::InternTable::npos);
  EXPECT_EQ(table.intern("a", [&] { return next++; }), 0u);
  EXPECT_EQ(table.intern("b", [&] { return next++; }), 1u);
  EXPECT_EQ(table.intern("a", [&] { return next++; }), 0u)
      << "re-intern must not mint a new id";
  EXPECT_EQ(next, 2u);
  EXPECT_EQ(table.find("b"), 1u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(InternTable, GrowsPastInitialCapacityWithStableIds) {
  core::InternTable table;
  std::size_t next = 0;
  const std::size_t names = 500;  // forces several snapshot rebuilds
  for (std::size_t i = 0; i < names; ++i) {
    EXPECT_EQ(table.intern("class_" + std::to_string(i),
                           [&] { return next++; }),
              i);
  }
  for (std::size_t i = 0; i < names; ++i) {
    EXPECT_EQ(table.find("class_" + std::to_string(i)), i);
  }
  EXPECT_EQ(table.size(), names);
}

// Readers race writers across snapshot rebuilds: every thread interns an
// overlapping window of names while probing already-published ones. Run
// under TSan in CI; the invariant checked here is that concurrent
// interns of the same name agree on one id.
TEST(InternTable, ConcurrentInternAndFindAgree) {
  core::InternTable table;
  std::atomic<std::size_t> next{0};
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kNames = 200;
  std::vector<std::array<std::size_t, kNames>> ids(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kNames; ++i) {
        // Stagger per-thread order so writers collide on fresh names.
        const std::size_t n = (i + t * 17) % kNames;
        const std::string name = "cls_" + std::to_string(n);
        ids[t][n] = table.intern(name, [&] { return next.fetch_add(1); });
        // Lock-free probe of a name that must already be published.
        EXPECT_EQ(table.find(name), ids[t][n]);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.size(), kNames);
  for (std::size_t n = 0; n < kNames; ++n) {
    for (std::size_t t = 1; t < kThreads; ++t) {
      EXPECT_EQ(ids[t][n], ids[0][n]) << "divergent id for name " << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Deque ring reclamation

TEST(ChaseLevDequeReclaim, FreesRetiredRingsAtQuiescentPoint) {
  rt::ChaseLevDeque<int*> d(4);
  std::vector<int> vals(1000);
  for (auto& v : vals) d.push(&v);
  EXPECT_GT(d.ring_count(), 1u) << "growth must retain retired rings";
  std::size_t popped = 0;
  while (d.pop().has_value()) ++popped;
  EXPECT_EQ(popped, vals.size());

  d.reclaim();
  EXPECT_EQ(d.ring_count(), 1u);

  // The surviving ring is the largest: refilling to the same depth must
  // not grow again, and the deque must still round-trip correctly.
  for (auto& v : vals) d.push(&v);
  EXPECT_EQ(d.ring_count(), 1u);
  EXPECT_EQ(d.steal(), std::optional<int*>(&vals[0]));
  EXPECT_EQ(d.pop(), std::optional<int*>(&vals.back()));
}

// ---------------------------------------------------------------------------
// Runtime spawn path

struct StormCtx {
  rt::Runtime* rt;
  rt::ClassHandle handle;
  std::atomic<std::uint64_t>* leaves;
  std::atomic<std::uint64_t>* worker_allocs;
};

// Binary recursion; each node measures the allocations its own spawns
// make on this worker thread.
void storm_node(const StormCtx& ctx, std::uint32_t depth) {
  if (depth == 0) {
    ctx.leaves->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t before = tl_heap_allocs;
  for (int child = 0; child < 2; ++child) {
    ctx.rt->spawn(ctx.handle,
                  [ctx, depth] { storm_node(ctx, depth - 1); });
  }
  ctx.worker_allocs->fetch_add(tl_heap_allocs - before,
                               std::memory_order_relaxed);
}

rt::RuntimeOptions storm_options(std::size_t workers, rt::SchedulerKind k) {
  rt::RuntimeOptions opt;
  opt.workers = workers;
  opt.kind = k;
  opt.enable_pmc = false;
  return opt;
}

std::vector<rt::TaskDesc> storm_roots(const StormCtx& ctx,
                                      std::size_t roots,
                                      std::uint32_t depth) {
  std::vector<rt::TaskDesc> tasks;
  for (std::size_t r = 0; r < roots; ++r) {
    tasks.push_back(
        rt::TaskDesc{"storm", [ctx, depth] { storm_node(ctx, depth); }});
  }
  return tasks;
}

TEST(SpawnPath, SteadyStateSpawnIsAllocationFree) {
  // One worker: batch 2 then replays batch 1's spawn sequence exactly,
  // so every retained slab and ring is provably large enough. With more
  // workers the steal split varies per batch and a worker can see more
  // spawns than last time, legitimately growing its arena (amortized,
  // not steady-state) — that case is exercised by the stress test below.
  rt::Runtime runtime(storm_options(1, rt::SchedulerKind::kEewa));
  std::atomic<std::uint64_t> leaves{0};
  std::atomic<std::uint64_t> worker_allocs{0};
  StormCtx ctx{&runtime, runtime.handle("storm"), &leaves, &worker_allocs};
  constexpr std::uint32_t kDepth = 7;
  constexpr std::size_t kRoots = 4;

  // Warmup batch: grows arena slabs, deque rings, and the intern table
  // to steady state. Those allocations are expected and not asserted on.
  runtime.run_batch(storm_roots(ctx, kRoots, kDepth));
  EXPECT_EQ(leaves.load(), kRoots << kDepth);

  // Steady state: identical batch shape, so every spawn must be served
  // from retained slabs and rings with the capture inline — zero heap
  // allocations and zero TaskFn spills on the worker threads.
  leaves.store(0);
  worker_allocs.store(0);
  const std::uint64_t fallbacks_before =
      rt::TaskFn::heap_fallbacks().load(std::memory_order_relaxed);
  runtime.run_batch(storm_roots(ctx, kRoots, kDepth));
  EXPECT_EQ(leaves.load(), kRoots << kDepth);
  EXPECT_EQ(worker_allocs.load(), 0u)
      << "steady-state spawn() touched the heap";
  EXPECT_EQ(rt::TaskFn::heap_fallbacks().load(std::memory_order_relaxed),
            fallbacks_before);
}

// All workers spawning recursively at once, repeatedly; the batch-report
// invariant (every task acquired exactly once) must survive the storm.
// This is the spawn-path stress case the TSan CI job runs.
TEST(SpawnPath, ConcurrentRecursiveSpawnStress) {
  for (const auto kind :
       {rt::SchedulerKind::kCilk, rt::SchedulerKind::kEewa}) {
    rt::Runtime runtime(storm_options(4, kind));
    std::atomic<std::uint64_t> leaves{0};
    std::atomic<std::uint64_t> worker_allocs{0};
    StormCtx ctx{&runtime, runtime.handle("storm"), &leaves,
                 &worker_allocs};
    constexpr std::uint32_t kDepth = 8;
    constexpr std::size_t kRoots = 8;
    const std::uint64_t expected_per_batch =
        kRoots * ((1ull << (kDepth + 1)) - 1);
    for (int batch = 0; batch < 3; ++batch) {
      leaves.store(0);
      runtime.run_batch(storm_roots(ctx, kRoots, kDepth));
      EXPECT_EQ(leaves.load(), kRoots << kDepth);
      const auto& report = runtime.last_batch_report();
      EXPECT_EQ(report.tasks, expected_per_batch);
      EXPECT_EQ(report.acquires(), report.tasks)
          << "batch " << batch << ": acquire invariant broken";
      EXPECT_EQ(report.spawns, expected_per_batch - kRoots);
    }
    EXPECT_EQ(runtime.tasks_run(), 3 * expected_per_batch);
  }
}

TEST(SpawnPath, HandleAndNameSpawnAgreeOnClassIdentity) {
  rt::Runtime runtime(storm_options(1, rt::SchedulerKind::kCilk));
  const rt::ClassHandle h = runtime.handle("same_class");
  EXPECT_EQ(h.id, runtime.handle("same_class").id);
  EXPECT_EQ(h.id, runtime.class_id("same_class"));
  std::atomic<int> by_name{0};
  std::atomic<int> by_handle{0};
  std::vector<rt::TaskDesc> tasks;
  tasks.push_back(rt::TaskDesc{"same_class", [&runtime, h, &by_name,
                                              &by_handle] {
    runtime.spawn("same_class", [&by_name] { by_name.fetch_add(1); });
    runtime.spawn(h, [&by_handle] { by_handle.fetch_add(1); });
  }});
  runtime.run_batch(std::move(tasks));
  EXPECT_EQ(by_name.load(), 1);
  EXPECT_EQ(by_handle.load(), 1);
  // One class, three executions of it.
  const auto& report = runtime.last_batch_report();
  ASSERT_GT(report.classes.size(), h.id);
  EXPECT_EQ(report.classes[h.id].count, 3u);
}

TEST(SpawnPath, SpawnOutsideWorkerThrows) {
  rt::Runtime runtime(storm_options(1, rt::SchedulerKind::kCilk));
  EXPECT_THROW(runtime.spawn("c", [] {}), std::logic_error);
}

}  // namespace
}  // namespace eewa
