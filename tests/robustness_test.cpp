// Failure-injection and edge-case tests across modules: policies that
// lose tasks, degraded sysfs trees, runtime lifecycle corner cases,
// determinism guarantees, and stress across many batch generations.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <tuple>

#include "core/actuation.hpp"
#include "core/eewa_controller.hpp"
#include "dvfs/fault_backend.hpp"
#include "dvfs/sysfs_backend.hpp"
#include "dvfs/trace_backend.hpp"
#include "energy/rapl_meter.hpp"
#include "runtime/runtime.hpp"
#include "sim/simulate.hpp"
#include "trace/synthetic.hpp"

namespace eewa {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------ simulator hardening --

/// A deliberately broken policy that never distributes the batch.
class LosingPolicy : public sim::Policy {
 public:
  std::string name() const override { return "losing"; }
  void batch_start(sim::Machine& m, const trace::Batch&,
                   std::size_t) override {
    m.configure_pools(1);  // ...and forgets to push any tasks
  }
  void place_task(sim::Machine&, sim::TaskId) override {}  // drops those too
  std::optional<sim::TaskId> acquire(sim::Machine& m,
                                     std::size_t core) override {
    return m.pop_local(core, 0);
  }
  void task_done(sim::Machine&, std::size_t, const trace::TraceTask&,
                 double) override {}
  double batch_end(sim::Machine&, double) override { return 0.0; }
};

TEST(SimHardening, PolicyThatLosesTasksIsDetected) {
  const auto t = trace::balanced(8, 0.01, 1, 1);
  LosingPolicy p;
  sim::SimOptions opt;
  opt.cores = 2;
  EXPECT_THROW(sim::simulate(t, p, opt), std::logic_error);
}

TEST(SimHardening, SingleCoreMachineRunsEverything) {
  const auto t = trace::bimodal(2, 0.05, 10, 0.005, 3, 2);
  sim::SimOptions opt;
  opt.cores = 1;
  opt.seed = 3;
  sim::CilkPolicy cilk;
  const auto a = sim::simulate(t, cilk, opt);
  // Serial lower bound: makespan >= total work.
  EXPECT_GE(a.time_s, t.total_work_s() * 0.999);
  sim::EewaPolicy eewa(t.class_names);
  EXPECT_NO_THROW(sim::simulate(t, eewa, opt));
}

TEST(SimHardening, CilkKeepsFixedAsymmetricRungsAcrossBatches) {
  const auto t = trace::balanced(20, 0.005, 4, 5);
  std::vector<std::size_t> rungs{0, 1, 2, 3};
  sim::CilkPolicy cilk(rungs);
  sim::SimOptions opt;
  opt.cores = 4;
  const auto res = sim::simulate(t, cilk, opt);
  for (const auto& b : res.batches) {
    EXPECT_EQ(b.cores_per_rung, (std::vector<std::size_t>{1, 1, 1, 1}));
  }
}

TEST(SimHardening, WatsWithUniformRungsDegeneratesGracefully) {
  const auto t = trace::bimodal(2, 0.05, 14, 0.005, 3, 6);
  std::vector<std::size_t> rungs(8, 0);  // single c-group
  sim::WatsPolicy wats(rungs, t.class_names);
  sim::SimOptions opt;
  opt.cores = 8;
  const auto res = sim::simulate(t, wats, opt);
  EXPECT_EQ(res.batches.back().cores_per_rung[0], 8u);
}

TEST(SimHardening, EewaDeterministicWithFixedOverhead) {
  const auto t = trace::bimodal(4, 0.08, 30, 0.004, 5, 8);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 13;
  opt.fixed_adjuster_overhead_s = 50e-6;  // remove host-clock noise
  sim::EewaPolicy a(t.class_names), b(t.class_names);
  const auto ra = sim::simulate(t, a, opt);
  const auto rb = sim::simulate(t, b, opt);
  EXPECT_DOUBLE_EQ(ra.time_s, rb.time_s);
  EXPECT_DOUBLE_EQ(ra.energy_j, rb.energy_j);
  for (std::size_t i = 0; i < ra.batches.size(); ++i) {
    EXPECT_EQ(ra.batches[i].cores_per_rung, rb.batches[i].cores_per_rung);
  }
}

TEST(SimHardening, EewaNearDeterministicWithMeasuredOverhead) {
  // With measured adjuster time the only noise is microseconds of host
  // clock per batch: totals agree to well under a percent.
  const auto t = trace::bimodal(4, 0.08, 30, 0.004, 5, 8);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 13;
  sim::EewaPolicy a(t.class_names), b(t.class_names);
  const auto ra = sim::simulate(t, a, opt);
  const auto rb = sim::simulate(t, b, opt);
  EXPECT_NEAR(ra.time_s / rb.time_s, 1.0, 0.02);
  EXPECT_NEAR(ra.energy_j / rb.energy_j, 1.0, 0.02);
}

TEST(SimHardening, TransitionsAccumulateAcrossBatches) {
  const auto t = trace::bimodal(4, 0.08, 30, 0.004, 6, 9);
  sim::SimOptions opt;
  opt.cores = 16;
  sim::EewaPolicy eewa(t.class_names);
  const auto res = sim::simulate(t, eewa, opt);
  std::size_t per_batch = 0;
  for (const auto& b : res.batches) per_batch += b.transitions;
  EXPECT_EQ(per_batch, res.transitions);
}

// ------------------------------------------------- runtime lifecycle --

TEST(RuntimeLifecycle, ConstructDestructWithoutBatches) {
  rt::RuntimeOptions opt;
  opt.workers = 3;
  { rt::Runtime runtime(opt); }  // must join cleanly
  SUCCEED();
}

TEST(RuntimeLifecycle, ManyGenerationsWithSpawns) {
  rt::RuntimeOptions opt;
  opt.workers = 4;
  opt.kind = rt::SchedulerKind::kEewa;
  rt::Runtime runtime(opt);
  std::atomic<int> counter{0};
  rt::Runtime* rtp = &runtime;
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<rt::TaskDesc> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back({"parent", [rtp, &counter, i] {
                         counter.fetch_add(1);
                         if (i % 3 == 0) {
                           rtp->spawn("child",
                                      [&counter] { counter.fetch_add(1); });
                         }
                       }});
    }
    runtime.run_batch(std::move(tasks));
  }
  EXPECT_EQ(counter.load(), 20 * (10 + 4));
  EXPECT_EQ(runtime.batches_run(), 20u);
}

TEST(RuntimeLifecycle, SingleWorkerRuntimeWorks) {
  rt::RuntimeOptions opt;
  opt.workers = 1;
  rt::Runtime runtime(opt);
  std::atomic<int> counter{0};
  std::vector<rt::TaskDesc> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back({"t", [&counter] { counter.fetch_add(1); }});
  }
  runtime.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 8);
}

TEST(RuntimeLifecycle, PmcCanBeDisabled) {
  rt::RuntimeOptions opt;
  opt.workers = 2;
  opt.enable_pmc = false;
  rt::Runtime runtime(opt);
  std::atomic<int> counter{0};
  std::vector<rt::TaskDesc> tasks;
  tasks.push_back(rt::TaskDesc{"t", [&counter] { counter.fetch_add(1); }});
  runtime.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 1);
}

// ------------------------------------------------ degraded sysfs/RAPL --

class DegradedSysfs : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("eewa_degraded_" + std::to_string(::getpid()));
    const fs::path dir = root_ / "cpu0" / "cpufreq";
    fs::create_directories(dir);
    write(dir / "scaling_available_frequencies", "2500000 800000\n");
    // Make the governor un-writable by making it a directory: probe's
    // governor write fails and the backend must fall back to the
    // scaling_max_freq clamp.
    fs::create_directories(dir / "scaling_governor");
    write(dir / "scaling_max_freq", "2500000\n");
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  static void write(const fs::path& p, const std::string& v) {
    std::ofstream out(p);
    out << v;
  }

  fs::path root_;
};

TEST_F(DegradedSysfs, FallsBackToMaxFreqClamp) {
  auto backend = dvfs::SysfsBackend::probe(root_.string());
  ASSERT_TRUE(backend.has_value());
  EXPECT_FALSE(backend->userspace_governor());
  EXPECT_TRUE(backend->set_frequency(0, 1));
  std::ifstream in(root_ / "cpu0" / "cpufreq" / "scaling_max_freq");
  std::string value;
  std::getline(in, value);
  EXPECT_EQ(value, "800000");
}

TEST(RaplDegraded, DomainWithoutMaxRangeStillReads) {
  const fs::path root = fs::temp_directory_path() /
                        ("eewa_rapl_nomax_" + std::to_string(::getpid()));
  fs::create_directories(root / "intel-rapl:0");
  {
    std::ofstream out(root / "intel-rapl:0" / "energy_uj");
    out << "1000";
  }
  energy::RaplMeter meter(root.string());
  ASSERT_TRUE(meter.available());
  meter.start();
  {
    std::ofstream out(root / "intel-rapl:0" / "energy_uj");
    out << "3000";
  }
  EXPECT_NEAR(meter.stop_joules(), 0.002, 1e-9);
  std::error_code ec;
  fs::remove_all(root, ec);
}

// -------------------------------------------------- controller abuse --

TEST(ControllerAbuse, EndBatchWithoutTasksIsSafe) {
  core::EewaController ctrl(dvfs::FrequencyLadder::opteron8380(), 8);
  ctrl.begin_batch();
  const auto& plan = ctrl.end_batch(1.0);  // nothing recorded
  EXPECT_FALSE(plan.planned);
  EXPECT_EQ(plan.layout.group_count(), 1u);
}

TEST(ControllerAbuse, RejectsBadObservations) {
  core::EewaController ctrl(dvfs::FrequencyLadder::opteron8380(), 8);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  EXPECT_THROW(ctrl.record_task(f, 1.0, 99), std::out_of_range);
  EXPECT_THROW(ctrl.record_task(f + 10, 1.0, 0), std::out_of_range);
}

TEST(ControllerAbuse, PlanStableUnderRepeatedIdenticalBatches) {
  core::EewaController ctrl(dvfs::FrequencyLadder::opteron8380(), 16);
  const auto heavy = ctrl.class_id("heavy");
  const auto light = ctrl.class_id("light");
  std::vector<std::size_t> first_tuple;
  for (int batch = 0; batch < 5; ++batch) {
    ctrl.begin_batch();
    for (int i = 0; i < 5; ++i) ctrl.record_task(heavy, 0.4, 0);
    for (int i = 0; i < 30; ++i) ctrl.record_task(light, 0.02, 0);
    ctrl.end_batch(0.5);
    if (batch == 1) first_tuple = ctrl.plan().tuple;
    if (batch > 1) {
      EXPECT_EQ(ctrl.plan().tuple, first_tuple);
    }
  }
}

// --------------------------------------------- fault-tolerant DVFS --

/// A controller with a real multi-group plan (heavy class fast, light
/// class slower, leftovers parked at the bottom) built from one
/// synthetic measurement batch.
core::EewaController planned_controller(
    std::size_t cores = 16, core::ControllerOptions copts = {}) {
  core::EewaController ctrl(dvfs::FrequencyLadder::opteron8380(), cores,
                            copts);
  const auto heavy = ctrl.class_id("heavy");
  const auto light = ctrl.class_id("light");
  ctrl.begin_batch();
  for (int i = 0; i < 5; ++i) ctrl.record_task(heavy, 0.4, 0);
  for (int i = 0; i < 30; ++i) ctrl.record_task(light, 0.02, 0);
  ctrl.end_batch(0.5);
  return ctrl;
}

TEST(FaultTolerantDvfs, FaultBackendIsSeededAndReproducible) {
  const auto ladder = dvfs::FrequencyLadder::opteron8380();
  dvfs::FaultSpec spec;
  spec.transient_failure_p = 0.5;
  spec.drift_p = 0.2;
  spec.stuck_cores = {2};
  spec.seed = 99;
  auto run = [&] {
    dvfs::TraceBackend inner(ladder, 4);
    dvfs::FaultInjectingBackend faulty(inner, spec);
    std::vector<int> results;
    for (std::size_t i = 0; i < 60; ++i) {
      results.push_back(
          faulty.set_frequency(i % 4, (i * 7) % ladder.size()) ? 1 : 0);
    }
    std::vector<std::size_t> rungs;
    for (std::size_t c = 0; c < 4; ++c) rungs.push_back(faulty.frequency_index(c));
    return std::tuple(results, rungs, faulty.transient_failures(),
                      faulty.drifts(), faulty.stuck_rejections());
  };
  const auto a = run();
  EXPECT_EQ(a, run());  // same seed, same injected fault stream
  EXPECT_GT(std::get<2>(a), 0u);
  EXPECT_GT(std::get<3>(a), 0u);
  EXPECT_GT(std::get<4>(a), 0u);
  // The stuck core never moved.
  EXPECT_EQ(std::get<1>(a)[2], 0u);
}

TEST(FaultTolerantDvfs, TransientFailuresHealedByRetries) {
  auto ctrl = planned_controller();
  ASSERT_TRUE(ctrl.plan().planned);
  ASSERT_GE(ctrl.plan().layout.group_count(), 2u);

  dvfs::TraceBackend inner(ctrl.ladder(), 16);
  dvfs::FaultSpec spec;
  spec.transient_failure_p = 0.5;
  spec.seed = 7;
  dvfs::FaultInjectingBackend faulty(inner, spec);

  core::ActuationOptions aopt;
  aopt.max_attempts = 16;  // p=0.5 cannot plausibly survive 16 tries
  const core::ActuationSupervisor supervisor(aopt);
  const auto out = supervisor.apply(ctrl.plan(), faulty);

  EXPECT_TRUE(out.ok());
  EXPECT_GT(out.retries, 0u);
  EXPECT_GT(out.write_failures, 0u);
  EXPECT_GT(out.backoff_s, 0.0);
  // Every core really sits at its planned rung now.
  const auto& layout = ctrl.plan().layout;
  for (std::size_t g = 0; g < layout.group_count(); ++g) {
    for (std::size_t c : layout.group(g).cores) {
      EXPECT_EQ(inner.frequency_index(c), layout.freq_index(g));
    }
  }
}

TEST(FaultTolerantDvfs, StuckCoreTriggersPlanReconciliation) {
  auto ctrl = planned_controller();
  ASSERT_TRUE(ctrl.plan().planned);
  // The plan parks the last core away from F0; the hardware refuses.
  const auto& intended = ctrl.plan().layout;
  ASSERT_NE(intended.freq_index(intended.group_of_core(15)), 0u);

  dvfs::TraceBackend inner(ctrl.ladder(), 16);
  dvfs::FaultSpec spec;
  spec.stuck_cores = {15};
  dvfs::FaultInjectingBackend faulty(inner, spec);

  const auto& out = ctrl.apply_supervised(faulty);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.failed_cores, std::vector<std::size_t>{15});
  EXPECT_EQ(ctrl.health().reconciliations, 1u);
  EXPECT_EQ(ctrl.health().failed_cores, 1u);

  // The reconciled plan passed CGroupLayout validation on construction
  // and its recorded rungs match what the cores actually run at — core
  // 15 is now grouped at the rung it is stuck on.
  const auto& layout = ctrl.plan().layout;
  for (std::size_t g = 0; g < layout.group_count(); ++g) {
    for (std::size_t c : layout.group(g).cores) {
      EXPECT_EQ(inner.frequency_index(c), layout.freq_index(g));
    }
  }
  EXPECT_EQ(layout.freq_index(layout.group_of_core(15)),
            inner.frequency_index(15));
  // A second supervised apply of the reconciled plan succeeds: it only
  // asks for rungs the machine can actually hold.
  EXPECT_TRUE(ctrl.apply_supervised(faulty).ok());
}

TEST(FaultTolerantDvfs, ReconcilePlanRegroupsByAchievedRung) {
  core::FrequencyPlan intended;
  intended.planned = true;
  intended.layout =
      dvfs::CGroupLayout({{.freq_index = 0, .cores = {0, 1}},
                          {.freq_index = 2, .cores = {2, 3}}},
                         {0, 1}, 4);
  // Core 1 drifted to rung 1; everyone else reached their target.
  const std::vector<std::size_t> achieved{0, 1, 2, 2};
  const auto r = core::reconcile_plan(intended, achieved);
  EXPECT_TRUE(r.planned);
  ASSERT_EQ(r.layout.group_count(), 3u);
  EXPECT_EQ(r.layout.freq_index(0), 0u);
  EXPECT_EQ(r.layout.freq_index(1), 1u);
  EXPECT_EQ(r.layout.freq_index(2), 2u);
  EXPECT_EQ(r.layout.group_of_core(1), 1u);
  EXPECT_EQ(r.layout.group_of_core(3), 2u);
  // Class 0 wanted rung 0 and keeps it; class 1 wanted rung 2, still
  // available.
  EXPECT_EQ(r.layout.group_of_class(0), 0u);
  EXPECT_EQ(r.layout.group_of_class(1), 2u);
}

TEST(FaultTolerantDvfs, ReconcilePlanTieBreaksToFasterGroup) {
  core::FrequencyPlan intended;
  intended.planned = true;
  intended.layout = dvfs::CGroupLayout(
      {{.freq_index = 1, .cores = {0, 1, 2, 3}}}, {0}, 4);
  // The intended rung 1 vanished: cores ended up at rungs 0 and 2,
  // both one rung away. The class must go to the faster group.
  const std::vector<std::size_t> achieved{0, 0, 2, 2};
  const auto r = core::reconcile_plan(intended, achieved);
  ASSERT_EQ(r.layout.group_count(), 2u);
  EXPECT_EQ(r.layout.group_of_class(0), 0u);
}

TEST(FaultTolerantDvfs, WatchdogDegradesAfterConsecutiveActuationFailures) {
  core::ControllerOptions copts;
  copts.watchdog.max_consecutive_actuation_failures = 3;
  core::EewaController ctrl(dvfs::FrequencyLadder::opteron8380(), 16, copts);
  const auto heavy = ctrl.class_id("heavy");
  const auto light = ctrl.class_id("light");

  dvfs::TraceBackend inner(ctrl.ladder(), 16);
  dvfs::FaultSpec spec;
  spec.transient_failure_p = 1.0;  // every frequency write bounces
  dvfs::FaultInjectingBackend faulty(inner, spec);

  int batches = 0;
  for (; batches < 10 && !ctrl.degraded(); ++batches) {
    ctrl.begin_batch();
    for (int i = 0; i < 5; ++i) ctrl.record_task(heavy, 0.4, 0);
    for (int i = 0; i < 30; ++i) ctrl.record_task(light, 0.02, 0);
    ctrl.end_batch(0.5);
    ctrl.apply_supervised(faulty);
  }

  EXPECT_TRUE(ctrl.degraded());
  EXPECT_EQ(batches, 3);  // exactly 3 consecutive failed actuations
  EXPECT_EQ(ctrl.health().degradations, 1u);
  EXPECT_TRUE(ctrl.health().degraded);
  EXPECT_GE(ctrl.health().stuck_cores, 1u);
  // Degraded mode is the §IV-D safe configuration: one c-group at F0.
  EXPECT_EQ(ctrl.plan().layout.group_count(), 1u);
  EXPECT_EQ(ctrl.plan().layout.freq_index(0), 0u);
  // ...and it is sticky: further batches keep the uniform plan.
  ctrl.begin_batch();
  for (int i = 0; i < 5; ++i) ctrl.record_task(heavy, 0.4, 0);
  ctrl.end_batch(0.5);
  EXPECT_EQ(ctrl.plan().layout.group_count(), 1u);
  EXPECT_EQ(ctrl.plan().layout.freq_index(0), 0u);
}

TEST(FaultTolerantDvfs, TaskExceptionWatchdogTripsDegradedMode) {
  core::ControllerOptions copts;
  copts.watchdog.max_task_exceptions = 4;
  auto ctrl = planned_controller(16, copts);
  ASSERT_GE(ctrl.plan().layout.group_count(), 2u);
  ctrl.note_task_failures(3);
  EXPECT_FALSE(ctrl.degraded());
  ctrl.note_task_failures(1);
  EXPECT_TRUE(ctrl.degraded());
  EXPECT_EQ(ctrl.health().task_exceptions, 4u);
  EXPECT_EQ(ctrl.plan().layout.group_count(), 1u);
}

TEST(FaultTolerantDvfs, DeterministicEndToEndWithTransientFaults) {
  // The acceptance run: 20% of frequency writes bounce and one core is
  // permanently stuck, yet a multi-batch simulated run completes with
  // no lost tasks, a plan that always matches the machine, and health
  // counters that are bit-identical across same-seed runs.
  const auto t = trace::bimodal(4, 0.08, 30, 0.004, 6, 8);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 13;
  opt.fixed_adjuster_overhead_s = 50e-6;  // remove host-clock noise
  opt.faults.transient_failure_p = 0.2;
  opt.faults.stuck_cores = {15};
  opt.faults.seed = 1234;

  sim::EewaPolicy a(t.class_names), b(t.class_names);
  const auto ra = sim::simulate(t, a, opt);
  const auto rb = sim::simulate(t, b, opt);

  // No lost tasks: simulate() throws on dropped work, and every trace
  // batch produced a batch result.
  EXPECT_EQ(ra.batches.size(), t.batches.size());

  // Bit-identical timeline and fault handling across runs.
  EXPECT_DOUBLE_EQ(ra.time_s, rb.time_s);
  EXPECT_DOUBLE_EQ(ra.energy_j, rb.energy_j);
  const auto& ha = a.controller().health();
  const auto& hb = b.controller().health();
  EXPECT_EQ(ha.to_string(), hb.to_string());

  // The faults were really exercised and really healed.
  EXPECT_GT(ha.retries, 0u);
  EXPECT_GT(ha.write_failures, 0u);
  EXPECT_GE(ha.reconciliations, 1u);

  // The plan never lies: per batch, the rungs it records are exactly
  // the rungs the machine ran at.
  ASSERT_EQ(a.planned_rungs().size(), t.batches.size());
  for (std::size_t i = 0; i < a.planned_rungs().size(); ++i) {
    EXPECT_EQ(a.planned_rungs()[i], a.applied_rungs()[i]) << "batch " << i;
  }
}

TEST(FaultTolerantDvfs, SimRunWithStuckCoreCompletesAndDegrades) {
  // A core that can never leave F0 fails its actuation every batch;
  // after the consecutive-failure threshold the watchdog parks the
  // whole machine at F0 and the run still completes.
  const auto t = trace::bimodal(4, 0.08, 30, 0.004, 8, 8);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 13;
  opt.fixed_adjuster_overhead_s = 50e-6;
  opt.faults.stuck_cores = {15};

  sim::EewaPolicy p(t.class_names);
  const auto res = sim::simulate(t, p, opt);
  EXPECT_EQ(res.batches.size(), t.batches.size());
  const auto& h = p.controller().health();
  EXPECT_GE(h.reconciliations, 3u);
  EXPECT_EQ(h.degradations, 1u);
  EXPECT_TRUE(p.controller().degraded());
  // Post-degrade batches run the whole machine at F0.
  EXPECT_EQ(res.batches.back().cores_per_rung[0], 16u);
}

TEST(FaultTolerantDvfs, RuntimeHealsTransientFaultsWithoutLosingTasks) {
  const auto ladder = dvfs::FrequencyLadder::opteron8380();
  // Workers start parked at the slowest rung so the very first (F0)
  // actuation must really transition every core through faulty writes.
  dvfs::TraceBackend inner(ladder, 4, ladder.slowest_index());
  dvfs::FaultSpec spec;
  spec.transient_failure_p = 0.5;
  spec.seed = 77;
  dvfs::FaultInjectingBackend faulty(inner, spec);

  rt::RuntimeOptions opt;
  opt.workers = 4;
  opt.kind = rt::SchedulerKind::kEewa;
  opt.backend = &faulty;
  rt::Runtime runtime(opt);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 8; ++batch) {
    std::vector<rt::TaskDesc> tasks;
    for (int i = 0; i < 12; ++i) {
      tasks.push_back({"t", [&counter] { counter.fetch_add(1); }});
    }
    runtime.run_batch(std::move(tasks));
  }

  EXPECT_EQ(counter.load(), 8 * 12);  // zero lost tasks
  EXPECT_EQ(runtime.failed_tasks(), 0u);
  const auto& h = runtime.health();
  EXPECT_GT(h.writes, 0u);
  EXPECT_GT(h.retries, 0u);
  EXPECT_GT(faulty.transient_failures(), 0u);
}

TEST(FaultTolerantDvfs, RuntimeTaskExceptionsTripWatchdog) {
  rt::RuntimeOptions opt;
  opt.workers = 2;
  opt.kind = rt::SchedulerKind::kEewa;
  opt.controller.watchdog.max_task_exceptions = 4;
  rt::Runtime runtime(opt);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 6; ++batch) {
    std::vector<rt::TaskDesc> tasks;
    tasks.push_back({"bad", [] { throw std::runtime_error("boom"); }});
    for (int i = 0; i < 5; ++i) {
      tasks.push_back({"ok", [&counter] { counter.fetch_add(1); }});
    }
    EXPECT_THROW(runtime.run_batch(std::move(tasks)), std::runtime_error);
  }
  // Healthy tasks still ran — a throwing task never takes the batch
  // down with it…
  EXPECT_EQ(counter.load(), 6 * 5);
  EXPECT_EQ(runtime.failed_tasks(), 6u);
  // …and the accumulated exceptions tripped the watchdog.
  EXPECT_GE(runtime.health().task_exceptions, 4u);
  EXPECT_TRUE(runtime.controller().degraded());
  EXPECT_EQ(runtime.controller().plan().layout.group_count(), 1u);
}

// ----------------------------------------------- sysfs housekeeping --

class FakeSysfs : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("eewa_sysfs_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void make_cpu(std::size_t id) {
    const fs::path dir = root_ / ("cpu" + std::to_string(id)) / "cpufreq";
    fs::create_directories(dir);
    write(dir / "scaling_available_frequencies", "2500000 1800000 800000\n");
    write(dir / "scaling_governor", "ondemand\n");
    write(dir / "scaling_max_freq", "2500000\n");
    write(dir / "scaling_setspeed", "<unsupported>\n");
  }

  static void write(const fs::path& p, const std::string& v) {
    std::ofstream out(p);
    out << v;
  }

  std::string read(const fs::path& p) const {
    std::ifstream in(root_ / p);
    std::string value;
    std::getline(in, value);
    return value;
  }

  fs::path root_;
};

TEST_F(FakeSysfs, RestoresGovernorAndClampOnDestruction) {
  make_cpu(0);
  make_cpu(1);
  {
    auto backend = dvfs::SysfsBackend::probe(root_.string());
    ASSERT_TRUE(backend.has_value());
    EXPECT_TRUE(backend->userspace_governor());
    EXPECT_EQ(read("cpu0/cpufreq/scaling_governor"), "userspace");
    EXPECT_TRUE(backend->set_frequency(0, 2));
    EXPECT_TRUE(backend->set_frequency(1, 1));
  }
  // Destruction put the tree back the way probe() found it.
  EXPECT_EQ(read("cpu0/cpufreq/scaling_governor"), "ondemand");
  EXPECT_EQ(read("cpu1/cpufreq/scaling_governor"), "ondemand");
  EXPECT_EQ(read("cpu0/cpufreq/scaling_max_freq"), "2500000");
  EXPECT_EQ(read("cpu1/cpufreq/scaling_max_freq"), "2500000");
}

TEST_F(FakeSysfs, RestoreIsIdempotentAndMoveSafe) {
  make_cpu(0);
  auto backend = dvfs::SysfsBackend::probe(root_.string());
  ASSERT_TRUE(backend.has_value());
  // Move the backend: only the destination may restore the tree.
  dvfs::SysfsBackend moved = std::move(*backend);
  backend.reset();  // destroys the moved-from shell — must not restore
  EXPECT_EQ(read("cpu0/cpufreq/scaling_governor"), "userspace");
  moved.restore();
  EXPECT_EQ(read("cpu0/cpufreq/scaling_governor"), "ondemand");
  // Restoring twice (explicitly, then from the destructor) is safe.
  write(root_ / "cpu0/cpufreq/scaling_governor", "schedutil\n");
  moved.restore();
  EXPECT_EQ(read("cpu0/cpufreq/scaling_governor"), "schedutil");
}

TEST_F(FakeSysfs, ProbeToleratesHolesInCpuNumbering) {
  // cpu2 is offline (no directory); decoy entries must be skipped.
  make_cpu(0);
  make_cpu(1);
  make_cpu(3);
  fs::create_directories(root_ / "cpufreq");
  fs::create_directories(root_ / "cpuidle");
  auto backend = dvfs::SysfsBackend::probe(root_.string());
  ASSERT_TRUE(backend.has_value());
  EXPECT_EQ(backend->core_count(), 3u);
  EXPECT_EQ(backend->cpu_id(0), 0u);
  EXPECT_EQ(backend->cpu_id(1), 1u);
  EXPECT_EQ(backend->cpu_id(2), 3u);
  // Logical core 2 drives kernel cpu3.
  EXPECT_TRUE(backend->set_frequency(2, 2));
  EXPECT_EQ(read("cpu3/cpufreq/scaling_setspeed"), "800000");
  EXPECT_EQ(backend->frequency_index(2), 2u);
}

}  // namespace
}  // namespace eewa
