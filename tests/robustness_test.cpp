// Failure-injection and edge-case tests across modules: policies that
// lose tasks, degraded sysfs trees, runtime lifecycle corner cases,
// determinism guarantees, and stress across many batch generations.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "core/eewa_controller.hpp"
#include "dvfs/sysfs_backend.hpp"
#include "energy/rapl_meter.hpp"
#include "runtime/runtime.hpp"
#include "sim/simulate.hpp"
#include "trace/synthetic.hpp"

namespace eewa {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------ simulator hardening --

/// A deliberately broken policy that never distributes the batch.
class LosingPolicy : public sim::Policy {
 public:
  std::string name() const override { return "losing"; }
  void batch_start(sim::Machine& m, const trace::Batch&,
                   std::size_t) override {
    m.configure_pools(1);  // ...and forgets to push any tasks
  }
  void place_task(sim::Machine&, sim::TaskId) override {}  // drops those too
  std::optional<sim::TaskId> acquire(sim::Machine& m,
                                     std::size_t core) override {
    return m.pop_local(core, 0);
  }
  void task_done(sim::Machine&, std::size_t, const trace::TraceTask&,
                 double) override {}
  double batch_end(sim::Machine&, double) override { return 0.0; }
};

TEST(SimHardening, PolicyThatLosesTasksIsDetected) {
  const auto t = trace::balanced(8, 0.01, 1, 1);
  LosingPolicy p;
  sim::SimOptions opt;
  opt.cores = 2;
  EXPECT_THROW(sim::simulate(t, p, opt), std::logic_error);
}

TEST(SimHardening, SingleCoreMachineRunsEverything) {
  const auto t = trace::bimodal(2, 0.05, 10, 0.005, 3, 2);
  sim::SimOptions opt;
  opt.cores = 1;
  opt.seed = 3;
  sim::CilkPolicy cilk;
  const auto a = sim::simulate(t, cilk, opt);
  // Serial lower bound: makespan >= total work.
  EXPECT_GE(a.time_s, t.total_work_s() * 0.999);
  sim::EewaPolicy eewa(t.class_names);
  EXPECT_NO_THROW(sim::simulate(t, eewa, opt));
}

TEST(SimHardening, CilkKeepsFixedAsymmetricRungsAcrossBatches) {
  const auto t = trace::balanced(20, 0.005, 4, 5);
  std::vector<std::size_t> rungs{0, 1, 2, 3};
  sim::CilkPolicy cilk(rungs);
  sim::SimOptions opt;
  opt.cores = 4;
  const auto res = sim::simulate(t, cilk, opt);
  for (const auto& b : res.batches) {
    EXPECT_EQ(b.cores_per_rung, (std::vector<std::size_t>{1, 1, 1, 1}));
  }
}

TEST(SimHardening, WatsWithUniformRungsDegeneratesGracefully) {
  const auto t = trace::bimodal(2, 0.05, 14, 0.005, 3, 6);
  std::vector<std::size_t> rungs(8, 0);  // single c-group
  sim::WatsPolicy wats(rungs, t.class_names);
  sim::SimOptions opt;
  opt.cores = 8;
  const auto res = sim::simulate(t, wats, opt);
  EXPECT_EQ(res.batches.back().cores_per_rung[0], 8u);
}

TEST(SimHardening, EewaDeterministicWithFixedOverhead) {
  const auto t = trace::bimodal(4, 0.08, 30, 0.004, 5, 8);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 13;
  opt.fixed_adjuster_overhead_s = 50e-6;  // remove host-clock noise
  sim::EewaPolicy a(t.class_names), b(t.class_names);
  const auto ra = sim::simulate(t, a, opt);
  const auto rb = sim::simulate(t, b, opt);
  EXPECT_DOUBLE_EQ(ra.time_s, rb.time_s);
  EXPECT_DOUBLE_EQ(ra.energy_j, rb.energy_j);
  for (std::size_t i = 0; i < ra.batches.size(); ++i) {
    EXPECT_EQ(ra.batches[i].cores_per_rung, rb.batches[i].cores_per_rung);
  }
}

TEST(SimHardening, EewaNearDeterministicWithMeasuredOverhead) {
  // With measured adjuster time the only noise is microseconds of host
  // clock per batch: totals agree to well under a percent.
  const auto t = trace::bimodal(4, 0.08, 30, 0.004, 5, 8);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 13;
  sim::EewaPolicy a(t.class_names), b(t.class_names);
  const auto ra = sim::simulate(t, a, opt);
  const auto rb = sim::simulate(t, b, opt);
  EXPECT_NEAR(ra.time_s / rb.time_s, 1.0, 0.02);
  EXPECT_NEAR(ra.energy_j / rb.energy_j, 1.0, 0.02);
}

TEST(SimHardening, TransitionsAccumulateAcrossBatches) {
  const auto t = trace::bimodal(4, 0.08, 30, 0.004, 6, 9);
  sim::SimOptions opt;
  opt.cores = 16;
  sim::EewaPolicy eewa(t.class_names);
  const auto res = sim::simulate(t, eewa, opt);
  std::size_t per_batch = 0;
  for (const auto& b : res.batches) per_batch += b.transitions;
  EXPECT_EQ(per_batch, res.transitions);
}

// ------------------------------------------------- runtime lifecycle --

TEST(RuntimeLifecycle, ConstructDestructWithoutBatches) {
  rt::RuntimeOptions opt;
  opt.workers = 3;
  { rt::Runtime runtime(opt); }  // must join cleanly
  SUCCEED();
}

TEST(RuntimeLifecycle, ManyGenerationsWithSpawns) {
  rt::RuntimeOptions opt;
  opt.workers = 4;
  opt.kind = rt::SchedulerKind::kEewa;
  rt::Runtime runtime(opt);
  std::atomic<int> counter{0};
  rt::Runtime* rtp = &runtime;
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<rt::TaskDesc> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back({"parent", [rtp, &counter, i] {
                         counter.fetch_add(1);
                         if (i % 3 == 0) {
                           rtp->spawn("child",
                                      [&counter] { counter.fetch_add(1); });
                         }
                       }});
    }
    runtime.run_batch(std::move(tasks));
  }
  EXPECT_EQ(counter.load(), 20 * (10 + 4));
  EXPECT_EQ(runtime.batches_run(), 20u);
}

TEST(RuntimeLifecycle, SingleWorkerRuntimeWorks) {
  rt::RuntimeOptions opt;
  opt.workers = 1;
  rt::Runtime runtime(opt);
  std::atomic<int> counter{0};
  std::vector<rt::TaskDesc> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back({"t", [&counter] { counter.fetch_add(1); }});
  }
  runtime.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 8);
}

TEST(RuntimeLifecycle, PmcCanBeDisabled) {
  rt::RuntimeOptions opt;
  opt.workers = 2;
  opt.enable_pmc = false;
  rt::Runtime runtime(opt);
  std::atomic<int> counter{0};
  runtime.run_batch({{"t", [&counter] { counter.fetch_add(1); }}});
  EXPECT_EQ(counter.load(), 1);
}

// ------------------------------------------------ degraded sysfs/RAPL --

class DegradedSysfs : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("eewa_degraded_" + std::to_string(::getpid()));
    const fs::path dir = root_ / "cpu0" / "cpufreq";
    fs::create_directories(dir);
    write(dir / "scaling_available_frequencies", "2500000 800000\n");
    // Make the governor un-writable by making it a directory: probe's
    // governor write fails and the backend must fall back to the
    // scaling_max_freq clamp.
    fs::create_directories(dir / "scaling_governor");
    write(dir / "scaling_max_freq", "2500000\n");
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  static void write(const fs::path& p, const std::string& v) {
    std::ofstream out(p);
    out << v;
  }

  fs::path root_;
};

TEST_F(DegradedSysfs, FallsBackToMaxFreqClamp) {
  auto backend = dvfs::SysfsBackend::probe(root_.string());
  ASSERT_TRUE(backend.has_value());
  EXPECT_FALSE(backend->userspace_governor());
  EXPECT_TRUE(backend->set_frequency(0, 1));
  std::ifstream in(root_ / "cpu0" / "cpufreq" / "scaling_max_freq");
  std::string value;
  std::getline(in, value);
  EXPECT_EQ(value, "800000");
}

TEST(RaplDegraded, DomainWithoutMaxRangeStillReads) {
  const fs::path root = fs::temp_directory_path() /
                        ("eewa_rapl_nomax_" + std::to_string(::getpid()));
  fs::create_directories(root / "intel-rapl:0");
  {
    std::ofstream out(root / "intel-rapl:0" / "energy_uj");
    out << "1000";
  }
  energy::RaplMeter meter(root.string());
  ASSERT_TRUE(meter.available());
  meter.start();
  {
    std::ofstream out(root / "intel-rapl:0" / "energy_uj");
    out << "3000";
  }
  EXPECT_NEAR(meter.stop_joules(), 0.002, 1e-9);
  std::error_code ec;
  fs::remove_all(root, ec);
}

// -------------------------------------------------- controller abuse --

TEST(ControllerAbuse, EndBatchWithoutTasksIsSafe) {
  core::EewaController ctrl(dvfs::FrequencyLadder::opteron8380(), 8);
  ctrl.begin_batch();
  const auto& plan = ctrl.end_batch(1.0);  // nothing recorded
  EXPECT_FALSE(plan.planned);
  EXPECT_EQ(plan.layout.group_count(), 1u);
}

TEST(ControllerAbuse, RejectsBadObservations) {
  core::EewaController ctrl(dvfs::FrequencyLadder::opteron8380(), 8);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  EXPECT_THROW(ctrl.record_task(f, 1.0, 99), std::out_of_range);
  EXPECT_THROW(ctrl.record_task(f + 10, 1.0, 0), std::out_of_range);
}

TEST(ControllerAbuse, PlanStableUnderRepeatedIdenticalBatches) {
  core::EewaController ctrl(dvfs::FrequencyLadder::opteron8380(), 16);
  const auto heavy = ctrl.class_id("heavy");
  const auto light = ctrl.class_id("light");
  std::vector<std::size_t> first_tuple;
  for (int batch = 0; batch < 5; ++batch) {
    ctrl.begin_batch();
    for (int i = 0; i < 5; ++i) ctrl.record_task(heavy, 0.4, 0);
    for (int i = 0; i < 30; ++i) ctrl.record_task(light, 0.02, 0);
    ctrl.end_batch(0.5);
    if (batch == 1) first_tuple = ctrl.plan().tuple;
    if (batch > 1) {
      EXPECT_EQ(ctrl.plan().tuple, first_tuple);
    }
  }
}

}  // namespace
}  // namespace eewa
