// Tests for the adjuster pipeline, the CPU/memory-bound classifier, the
// WATS allocation helper, and the EewaController batch state machine
// (paper Fig. 2): measurement batch at F0, replanning, DVFS application,
// overhead accounting, and the §IV-D memory-bound fallback.
#include <gtest/gtest.h>

#include "core/adjuster.hpp"
#include "core/classifier.hpp"
#include "core/eewa_controller.hpp"
#include "core/wats_allocation.hpp"
#include "dvfs/trace_backend.hpp"

namespace eewa::core {
namespace {

const dvfs::FrequencyLadder kLadder = dvfs::FrequencyLadder::opteron8380();

TEST(Adjuster, FullPipelineProducesPlannedLayout) {
  Adjuster adj(kLadder, 16);
  // Low overall load: 16 tasks × 0.5 s of F0 work against T = 2 s needs
  // only 4 F0-cores, so the adjuster can downclock.
  std::vector<ClassProfile> classes = {{0, "f", 16, 0.5}};
  const auto out = adj.adjust(classes, 1, 2.0);
  EXPECT_TRUE(out.attempted);
  ASSERT_TRUE(out.search.found);
  ASSERT_TRUE(out.plan.planned);
  // Some cores must be below F0 (that is the whole point).
  const auto per_rung = out.plan.layout.cores_per_rung(kLadder.size());
  EXPECT_LT(per_rung[0], 16u);
}

TEST(Adjuster, EmptyProfileFallsBackToUniform) {
  Adjuster adj(kLadder, 8);
  const auto out = adj.adjust({}, 0, 1.0);
  EXPECT_FALSE(out.attempted);
  EXPECT_FALSE(out.plan.planned);
  EXPECT_EQ(out.plan.layout.group_count(), 1u);
}

TEST(Adjuster, RejectsZeroCores) {
  EXPECT_THROW(Adjuster(kLadder, 0), std::invalid_argument);
}

TEST(Adjuster, ExhaustiveOptionUsesModel) {
  const auto model = energy::PowerModel::opteron8380_server();
  AdjusterOptions opt;
  opt.search = SearchKind::kExhaustive;
  opt.model = &model;
  Adjuster adj(kLadder, 16, opt);
  std::vector<ClassProfile> classes = {{0, "a", 8, 1.0}, {1, "b", 8, 0.25}};
  const auto out = adj.adjust(classes, 2, 2.0);
  ASSERT_TRUE(out.search.found);
  EXPECT_TRUE(tuple_is_valid(out.cc, out.search.tuple, 16));
}

TEST(Classifier, ThresholdsWork) {
  BoundednessClassifier c(0.01, 0.5);
  c.record(5, 1000);    // cmi 0.005 -> cpu-bound
  c.record(50, 1000);   // cmi 0.05  -> memory-bound
  c.record(0, 0);       // no instructions -> cpu-bound
  EXPECT_EQ(c.task_count(), 3u);
  EXPECT_EQ(c.memory_bound_count(), 1u);
  EXPECT_NEAR(c.memory_bound_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_FALSE(c.application_memory_bound());
  c.record_cmi(0.2);
  c.record_cmi(0.2);
  EXPECT_TRUE(c.application_memory_bound());
  c.reset();
  EXPECT_EQ(c.task_count(), 0u);
  EXPECT_FALSE(c.application_memory_bound());
}

TEST(WatsAllocation, HeavyClassesGoToFastGroups) {
  std::vector<ClassProfile> profile = {{0, "heavy", 10, 4.0},
                                       {1, "mid", 10, 1.0},
                                       {2, "light", 10, 0.2}};
  // Two groups with equal capacity: the heavy class alone exceeds the
  // fast group's half share, so mid and light fall to the slow group.
  const auto map = allocate_classes_proportional(profile, {1.0, 1.0}, 3);
  EXPECT_EQ(map[0], 0u);
  EXPECT_EQ(map[1], 1u);
  EXPECT_EQ(map[2], 1u);
}

TEST(WatsAllocation, SingleGroupTakesEverything) {
  std::vector<ClassProfile> profile = {{0, "a", 1, 1.0}, {1, "b", 1, 0.5}};
  const auto map = allocate_classes_proportional(profile, {2.0}, 2);
  EXPECT_EQ(map[0], 0u);
  EXPECT_EQ(map[1], 0u);
}

TEST(WatsAllocation, EmptyProfileMapsToFastest) {
  const auto map = allocate_classes_proportional({}, {1.0, 1.0}, 3);
  for (auto g : map) EXPECT_EQ(g, 0u);
}

TEST(WatsAllocation, RejectsNoGroups) {
  EXPECT_THROW(allocate_classes_proportional({}, {}, 0),
               std::invalid_argument);
}

// ------------------------------------------------------ EewaController --

TEST(EewaController, FirstBatchIsMeasurementAtF0) {
  EewaController ctrl(kLadder, 16);
  EXPECT_FALSE(ctrl.plan().planned);
  EXPECT_EQ(ctrl.plan().layout.group(0).freq_index, 0u);
  EXPECT_DOUBLE_EQ(ctrl.ideal_time_s(), 0.0);
}

TEST(EewaController, RecordsIdealTimeAndReplans) {
  EewaController ctrl(kLadder, 16);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  // 16 tasks, 0.5 s each at F0, against a 2 s makespan: underutilized.
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.5, 0);
  const auto& plan = ctrl.end_batch(2.0);
  EXPECT_DOUBLE_EQ(ctrl.ideal_time_s(), 2.0);
  EXPECT_EQ(ctrl.batches_completed(), 1u);
  ASSERT_TRUE(plan.planned);
  const auto per_rung = plan.layout.cores_per_rung(kLadder.size());
  EXPECT_LT(per_rung[0], 16u);  // downclocked something
  EXPECT_GT(ctrl.adjust_overhead_us(), 0.0);
}

TEST(EewaController, NormalizesBySlowCoreRung) {
  EewaController ctrl(kLadder, 4);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  // Task ran 2.5 s on the 0.8 GHz rung: normalized w = 0.8 s.
  ctrl.record_task(f, 2.5, 3);
  ctrl.end_batch(2.5);
  EXPECT_NEAR(ctrl.registry().mean_workload(f), 2.5 * 0.8 / 2.5, 1e-12);
}

TEST(EewaController, IdealTimeFixedAfterFirstBatch) {
  EewaController ctrl(kLadder, 8);
  const auto f = ctrl.class_id("f");
  for (int batch = 0; batch < 3; ++batch) {
    ctrl.begin_batch();
    for (int i = 0; i < 8; ++i) ctrl.record_task(f, 0.1, 0);
    ctrl.end_batch(batch == 0 ? 1.0 : 5.0);
  }
  EXPECT_DOUBLE_EQ(ctrl.ideal_time_s(), 1.0);
  EXPECT_EQ(ctrl.batches_completed(), 3u);
}

TEST(EewaController, AppliesPlanToBackend) {
  EewaController ctrl(kLadder, 16);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0);
  ctrl.end_batch(2.0);
  dvfs::TraceBackend backend(kLadder, 16);
  EXPECT_EQ(ctrl.apply(backend), 16u);
  // Backend rungs now match the plan layout.
  for (const auto& g : ctrl.plan().layout.groups()) {
    for (std::size_t c : g.cores) {
      EXPECT_EQ(backend.frequency_index(c), g.freq_index);
    }
  }
}

TEST(EewaController, GroupOfClassRoutesUnknownToFastest) {
  EewaController ctrl(kLadder, 16);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0);
  ctrl.end_batch(2.0);
  const auto g = ctrl.class_id("new_class");  // interned after planning
  EXPECT_EQ(ctrl.group_of_class(g), 0u);
}

TEST(EewaController, MemoryBoundGateDisablesPlanning) {
  ControllerOptions opt;
  opt.memory_gate_enabled = true;
  opt.task_cmi_threshold = 0.01;
  opt.app_memory_fraction = 0.5;
  EewaController ctrl(kLadder, 16, opt);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0, /*cmi=*/0.1);
  ctrl.end_batch(2.0);
  EXPECT_TRUE(ctrl.memory_bound_mode());
  EXPECT_FALSE(ctrl.plan().planned);
  // Later batches stay at uniform F0 no matter what.
  ctrl.begin_batch();
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0, 0.0);
  ctrl.end_batch(2.0);
  EXPECT_FALSE(ctrl.plan().planned);
}

TEST(EewaController, CpuBoundAppsPassTheGate) {
  EewaController ctrl(kLadder, 16);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0, /*cmi=*/0.001);
  ctrl.end_batch(2.0);
  EXPECT_FALSE(ctrl.memory_bound_mode());
  EXPECT_TRUE(ctrl.plan().planned);
}

TEST(EewaController, GateCanBeDisabled) {
  ControllerOptions opt;
  opt.memory_gate_enabled = false;
  EewaController ctrl(kLadder, 16, opt);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0, /*cmi=*/0.5);
  ctrl.end_batch(2.0);
  EXPECT_FALSE(ctrl.memory_bound_mode());
  EXPECT_TRUE(ctrl.plan().planned);
}

TEST(EewaController, PreferencesMatchPlanGroups) {
  EewaController ctrl(kLadder, 16);
  const auto heavy = ctrl.class_id("heavy");
  const auto light = ctrl.class_id("light");
  ctrl.begin_batch();
  for (int i = 0; i < 8; ++i) ctrl.record_task(heavy, 0.5, 0);
  for (int i = 0; i < 8; ++i) ctrl.record_task(light, 0.05, 0);
  ctrl.end_batch(2.0);
  EXPECT_EQ(ctrl.preferences().group_count(),
            ctrl.plan().layout.group_count());
}

TEST(EewaController, StableProfileReusesPlan) {
  EewaController ctrl(kLadder, 16);
  const auto f = ctrl.class_id("f");
  for (int batch = 0; batch < 3; ++batch) {
    ctrl.begin_batch();
    for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0);
    ctrl.end_batch(2.0);
  }
  // Batch 1 searches (and saves the basis); batches 2 and 3 present a
  // statistically identical profile and must skip Algorithm 1.
  EXPECT_EQ(ctrl.plans_reused(), 2u);
  EXPECT_TRUE(ctrl.plan().planned);
}

TEST(EewaController, DriftingClassTriggersResearch) {
  EewaController ctrl(kLadder, 16);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0);
  ctrl.end_batch(2.0);
  // Class f's mean workload drifts far past the 1% tolerance: the
  // memoized plan must be dropped and the k-tuple search re-run.
  ctrl.begin_batch();
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.50, 0);
  ctrl.end_batch(2.0);
  EXPECT_EQ(ctrl.plans_reused(), 0u);
  EXPECT_TRUE(ctrl.plan().planned);
}

TEST(EewaController, NewActiveClassTriggersResearch) {
  EewaController ctrl(kLadder, 16);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0);
  ctrl.end_batch(2.0);
  // A class unseen at search time joins the profile: reuse must not
  // serve it a plan whose layout predates its existence.
  const auto g = ctrl.class_id("g");
  ctrl.begin_batch();
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0);
  for (int i = 0; i < 16; ++i) ctrl.record_task(g, 0.10, 0);
  ctrl.end_batch(2.0);
  EXPECT_EQ(ctrl.plans_reused(), 0u);
}

TEST(EewaController, MaxWorkloadSpikeInvalidatesReuse) {
  // Regression: reuse used to compare only the class means, but rung
  // feasibility is gated on the heaviest task (critical path). A batch
  // whose mean barely moves while one task spikes must re-search — the
  // cached tuple may now be infeasible for the spiked critical path.
  EewaController ctrl(kLadder, 16);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0);
  ctrl.end_batch(2.0);
  ctrl.begin_batch();
  // Cumulative mean moves 0.625% (inside the 1% tolerance); the
  // iteration max jumps 20%.
  for (int i = 0; i < 15; ++i) ctrl.record_task(f, 0.25, 0);
  ctrl.record_task(f, 0.30, 0);
  ctrl.end_batch(2.0);
  EXPECT_EQ(ctrl.plans_reused(), 0u);
  EXPECT_TRUE(ctrl.plan().planned);
}

TEST(EewaController, SuffixDriftReplansIncrementally) {
  // Only the lighter class drifts: the heavy class keeps its sorted
  // position and statistics, so its rung is pinned and only the suffix
  // of the lattice is re-searched.
  EewaController ctrl(kLadder, 16);
  const auto heavy = ctrl.class_id("heavy");
  const auto light = ctrl.class_id("light");
  ctrl.begin_batch();
  for (int i = 0; i < 8; ++i) ctrl.record_task(heavy, 0.5, 0);
  for (int i = 0; i < 8; ++i) ctrl.record_task(light, 0.10, 0);
  ctrl.end_batch(2.0);
  const auto first_tuple = ctrl.last_search().tuple;
  ASSERT_FALSE(first_tuple.empty());
  ctrl.begin_batch();
  for (int i = 0; i < 8; ++i) ctrl.record_task(heavy, 0.5, 0);
  for (int i = 0; i < 8; ++i) ctrl.record_task(light, 0.20, 0);
  ctrl.end_batch(2.0);
  EXPECT_EQ(ctrl.plans_reused(), 0u);
  EXPECT_EQ(ctrl.plans_incremental(), 1u);
  EXPECT_TRUE(ctrl.plan().planned);
  // The stable prefix kept its rung verbatim.
  ASSERT_FALSE(ctrl.last_search().tuple.empty());
  EXPECT_EQ(ctrl.last_search().tuple[0], first_tuple[0]);
}

TEST(EewaController, DriftedClassMergingIntoGroupInvalidatesSuffix) {
  // Regression for the incremental path: when a drifted class's new
  // statistics would merge it into another class's c-group, everything
  // from its sorted position on must be re-searched — the stable prefix
  // ends before it, never after.
  EewaController ctrl(kLadder, 16);
  const auto a = ctrl.class_id("a");
  const auto b = ctrl.class_id("b");
  const auto c = ctrl.class_id("c");
  ctrl.begin_batch();
  for (int i = 0; i < 6; ++i) ctrl.record_task(a, 0.60, 0);
  for (int i = 0; i < 6; ++i) ctrl.record_task(b, 0.30, 0);
  for (int i = 0; i < 6; ++i) ctrl.record_task(c, 0.05, 0);
  ctrl.end_batch(2.0);
  const auto first_tuple = ctrl.last_search().tuple;
  ASSERT_EQ(first_tuple.size(), 3u);
  ctrl.begin_batch();
  // c drifts up toward b (cumulative mean ~0.15, still third): the
  // cached rungs for a and b survive, c's does not.
  for (int i = 0; i < 6; ++i) ctrl.record_task(a, 0.60, 0);
  for (int i = 0; i < 6; ++i) ctrl.record_task(b, 0.30, 0);
  for (int i = 0; i < 6; ++i) ctrl.record_task(c, 0.25, 0);
  ctrl.end_batch(2.0);
  EXPECT_EQ(ctrl.plans_reused(), 0u);
  EXPECT_EQ(ctrl.plans_incremental(), 1u);
  const auto& second = ctrl.last_search().tuple;
  ASSERT_EQ(second.size(), 3u);
  EXPECT_EQ(second[0], first_tuple[0]);
  EXPECT_EQ(second[1], first_tuple[1]);
  // Groups must stay consistent with the re-searched plan: classes map
  // inside the layout's group range.
  EXPECT_LT(ctrl.group_of_class(c), ctrl.plan().layout.group_count());
  EXPECT_LE(ctrl.group_of_class(a), ctrl.group_of_class(b));
  EXPECT_LE(ctrl.group_of_class(b), ctrl.group_of_class(c));
}

TEST(EewaController, VanishedClassReplansIncrementallyOverPrefix) {
  EewaController ctrl(kLadder, 16);
  const auto f = ctrl.class_id("f");
  const auto g = ctrl.class_id("g");
  ctrl.begin_batch();
  for (int i = 0; i < 8; ++i) ctrl.record_task(f, 0.5, 0);
  for (int i = 0; i < 8; ++i) ctrl.record_task(g, 0.1, 0);
  ctrl.end_batch(2.0);
  // g goes quiet: full reuse is out (active set changed), but f's
  // statistics are untouched, so its rung carries over.
  ctrl.begin_batch();
  for (int i = 0; i < 8; ++i) ctrl.record_task(f, 0.5, 0);
  ctrl.end_batch(2.0);
  EXPECT_EQ(ctrl.plans_reused(), 0u);
  EXPECT_EQ(ctrl.plans_incremental(), 1u);
  EXPECT_TRUE(ctrl.plan().planned);
}

TEST(EewaController, IncrementalReplanCanBeDisabled) {
  ControllerOptions opt;
  opt.incremental_replan_enabled = false;
  EewaController ctrl(kLadder, 16, opt);
  const auto heavy = ctrl.class_id("heavy");
  const auto light = ctrl.class_id("light");
  ctrl.begin_batch();
  for (int i = 0; i < 8; ++i) ctrl.record_task(heavy, 0.5, 0);
  for (int i = 0; i < 8; ++i) ctrl.record_task(light, 0.10, 0);
  ctrl.end_batch(2.0);
  ctrl.begin_batch();
  for (int i = 0; i < 8; ++i) ctrl.record_task(heavy, 0.5, 0);
  for (int i = 0; i < 8; ++i) ctrl.record_task(light, 0.20, 0);
  ctrl.end_batch(2.0);
  EXPECT_EQ(ctrl.plans_incremental(), 0u);
  EXPECT_TRUE(ctrl.plan().planned);
}

TEST(EewaController, PlanReuseCanBeDisabled) {
  ControllerOptions opt;
  opt.plan_reuse_enabled = false;
  EewaController ctrl(kLadder, 16, opt);
  const auto f = ctrl.class_id("f");
  for (int batch = 0; batch < 3; ++batch) {
    ctrl.begin_batch();
    for (int i = 0; i < 16; ++i) ctrl.record_task(f, 0.25, 0);
    ctrl.end_batch(2.0);
  }
  EXPECT_EQ(ctrl.plans_reused(), 0u);
  EXPECT_TRUE(ctrl.plan().planned);
}

TEST(EewaController, HeavierClassNeverOnSlowerGroupThanLighter) {
  EewaController ctrl(kLadder, 16);
  const auto heavy = ctrl.class_id("heavy");
  const auto light = ctrl.class_id("light");
  ctrl.begin_batch();
  for (int i = 0; i < 6; ++i) ctrl.record_task(heavy, 0.9, 0);
  for (int i = 0; i < 20; ++i) ctrl.record_task(light, 0.1, 0);
  ctrl.end_batch(2.0);
  if (ctrl.plan().planned) {
    EXPECT_LE(ctrl.group_of_class(heavy), ctrl.group_of_class(light));
  }
}

}  // namespace
}  // namespace eewa::core
