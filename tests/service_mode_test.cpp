// Open-loop service mode: ingress rings, admission policies, the
// sliding profile, end-to-end conservation (offered == admitted + shed +
// deferred + pending, admitted + spawned == executed + in_flight),
// overload shedding and recovery, async re-planning, and the deep-sleep
// arrival-wakeup latency bound.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "obs/service_metrics.hpp"
#include "runtime/ingress.hpp"
#include "runtime/runtime.hpp"
#include "runtime/service.hpp"
#include "util/fast_clock.hpp"

// Latency assertions get extra headroom under sanitizer instrumentation.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define EEWA_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define EEWA_TEST_SANITIZED 1
#endif
#endif
#ifndef EEWA_TEST_SANITIZED
#define EEWA_TEST_SANITIZED 0
#endif

namespace eewa::rt {
namespace {

constexpr bool kSanitized = EEWA_TEST_SANITIZED != 0;

TEST(IngressRing, MpscPushPopFifoAndFull) {
  BoundedMpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(int(i)));
  EXPECT_FALSE(q.push(99));  // full: fails, never blocks or grows
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.pop(out));
  // Slots recycle after consumption.
  EXPECT_TRUE(q.push(7));
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 7);
}

TEST(IngressRing, MpscManyProducersLoseNothing) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kEach = 5000;
  BoundedMpscQueue<std::uint64_t> q(1024);
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kEach; ++i) {
        const std::uint64_t v = p * kEach + i;
        if (!q.push(std::uint64_t(v))) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::set<std::uint64_t> seen;
  std::uint64_t out = 0;
  std::size_t spins = 0;
  while (seen.size() + rejected.load() < kProducers * kEach &&
         spins < 100000000) {
    if (q.pop(out)) {
      EXPECT_TRUE(seen.insert(out).second) << "duplicate " << out;
    } else {
      ++spins;
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  while (q.pop(out)) EXPECT_TRUE(seen.insert(out).second);
  // Everything was either consumed exactly once or rejected at the full
  // ring — nothing lost, nothing duplicated.
  EXPECT_EQ(seen.size() + rejected.load(), kProducers * kEach);
}

TEST(IngressRing, SpscOrderAndCapacity) {
  SpscRing<int> r(3);  // rounds up to 4
  EXPECT_EQ(r.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.push(int(i)));
  EXPECT_FALSE(r.push(5));
  int out = -1;
  ASSERT_TRUE(r.pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(r.push(5));
  for (int want : {1, 2, 3, 5}) {
    ASSERT_TRUE(r.pop(out));
    EXPECT_EQ(out, want);
  }
}

TEST(Admission, ShedLowestSlaThresholdsAreTiered) {
  // Three tiers over capacity 100, watermark 50: bronze (2) sheds at 50,
  // silver (1) at 75, gold (0) never.
  AdmissionController ac(AdmissionPolicy::kShedLowestSla, {0, 1, 2}, 50,
                         100);
  EXPECT_EQ(ac.shed_threshold(2), 50u);
  EXPECT_EQ(ac.shed_threshold(1), 75u);
  EXPECT_EQ(ac.shed_threshold(0), AdmissionController::kNeverShed);
  using D = AdmissionController::Decision;
  EXPECT_EQ(ac.decide(2, 49), D::kAdmit);
  EXPECT_EQ(ac.decide(2, 50), D::kShed);
  EXPECT_EQ(ac.decide(1, 50), D::kAdmit);
  EXPECT_EQ(ac.decide(1, 75), D::kShed);
  EXPECT_EQ(ac.decide(0, 1000000), D::kAdmit);
}

TEST(Admission, BlockNeverSheds) {
  AdmissionController ac(AdmissionPolicy::kBlock, {1, 2}, 10, 20);
  using D = AdmissionController::Decision;
  EXPECT_EQ(ac.decide(0, 1000000), D::kAdmit);
  EXPECT_EQ(ac.decide(1, 1000000), D::kAdmit);
}

TEST(Admission, ShedOldestEvictsAboveWatermark) {
  AdmissionController ac(AdmissionPolicy::kShedOldest, {1}, 10, 20);
  using D = AdmissionController::Decision;
  EXPECT_EQ(ac.decide(0, 9), D::kAdmit);
  EXPECT_EQ(ac.decide(0, 10), D::kEvictOldest);
}

TEST(SlidingProfile, WindowAgesOutOldEpochs) {
  SlidingProfile sp(2, 1);
  sp.record(0, 10.0, 0.0);
  auto p = sp.profile();
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0].mean_workload, 10.0);
  sp.rotate();
  sp.record(0, 2.0, 0.0);
  p = sp.profile();  // window holds both epochs
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0].mean_workload, 6.0);
  EXPECT_EQ(p[0].count, 2u);
  sp.rotate();  // the 10.0 epoch ages out
  p = sp.profile();
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0].mean_workload, 2.0);
  sp.rotate();  // everything ages out
  EXPECT_TRUE(sp.profile().empty());
}

TEST(SlidingProfile, SortedByMeanWorkloadDescending) {
  SlidingProfile sp(4, 3);
  sp.record(0, 1.0, 0.0);
  sp.record(1, 5.0, 0.0);
  sp.record(2, 3.0, 0.0);
  auto p = sp.profile();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0].class_id, 1u);
  EXPECT_EQ(p[1].class_id, 2u);
  EXPECT_EQ(p[2].class_id, 0u);
}

RuntimeOptions small_options(std::size_t workers) {
  RuntimeOptions opts;
  opts.workers = workers;
  opts.kind = SchedulerKind::kEewa;
  opts.enable_pmc = false;
  return opts;
}

TEST(ServiceMode, ExecutesEverythingAndReconcilesExactly) {
  Runtime rt(small_options(4));
  ServiceOptions so;
  so.classes = {{"alpha", 1}, {"beta", 2}};
  so.epoch_s = 0.002;
  rt.start_service(so);
  EXPECT_TRUE(rt.service_active());

  std::atomic<std::uint64_t> ran{0};
  const ClassHandle a = rt.handle("alpha");
  const ClassHandle b = rt.handle("beta");
  constexpr std::size_t kTasks = 20000;
  std::size_t queued = 0;
  for (std::size_t i = 0; i < kTasks; ++i) {
    const SubmitResult res =
        rt.submit(i % 2 ? a : b,
                  TaskFn([&ran] {
                    ran.fetch_add(1, std::memory_order_relaxed);
                  }),
                  i);
    if (res == SubmitResult::kQueued) ++queued;
  }
  ASSERT_TRUE(rt.drain_service(20.0));
  const obs::EpochReport report = rt.stop_service();
  EXPECT_FALSE(rt.service_active());

  // Everything queued ran; after the drain every identity is exact.
  EXPECT_EQ(report.offered, kTasks);
  EXPECT_EQ(report.executed + report.shed + report.deferred, kTasks);
  EXPECT_EQ(ran.load(), report.executed);
  EXPECT_EQ(report.pending, 0u);
  EXPECT_EQ(report.in_flight, 0u);
  EXPECT_EQ(report.reconcile_slack(), 0u) << report.to_string();
  // acquires() == executed once quiescent (the BatchReport invariant).
  EXPECT_EQ(report.acquires(), report.executed);
  // Per-class conservation.
  ASSERT_EQ(report.classes.size(), 2u);
  for (const auto& c : report.classes) {
    EXPECT_EQ(c.offered, c.admitted + c.shed + c.deferred);
    EXPECT_EQ(c.admitted, c.executed);
  }
}

TEST(ServiceMode, SubmitOutsideServiceIsStopped) {
  Runtime rt(small_options(2));
  EXPECT_EQ(rt.submit("x", TaskFn([] {})), SubmitResult::kStopped);
}

TEST(ServiceMode, UndeclaredClassThrows) {
  Runtime rt(small_options(2));
  ServiceOptions so;
  so.classes = {{"declared", 1}};
  rt.start_service(so);
  EXPECT_THROW(rt.submit("undeclared", TaskFn([] {})),
               std::invalid_argument);
  rt.stop_service();
}

TEST(ServiceMode, RunBatchWhileServingThrows) {
  Runtime rt(small_options(2));
  ServiceOptions so;
  so.classes = {{"c", 1}};
  rt.start_service(so);
  EXPECT_THROW(rt.run_batch({}), std::logic_error);
  rt.stop_service();
  // Batch mode works again after the service stops.
  std::atomic<int> ran{0};
  std::vector<TaskDesc> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(TaskDesc{"c", TaskFn([&ran] { ++ran; })});
  }
  rt.run_batch(std::move(batch));
  EXPECT_EQ(ran.load(), 64);
}

TEST(ServiceMode, OverloadShedsPerPolicyAndRecovers) {
  // 2 workers, slow tasks, tiny ring: offered rate is far above
  // capacity, so the bronze class must shed while gold only ever gets
  // backpressure. When the storm passes, shedding stops.
  Runtime rt(small_options(2));
  ServiceOptions so;
  so.classes = {{"gold", 0}, {"bronze", 2}};
  so.queue_capacity = 64;
  so.inbox_capacity = 16;
  so.high_watermark = 16;
  so.policy = AdmissionPolicy::kShedLowestSla;
  so.epoch_s = 0.002;
  rt.start_service(so);
  const ClassHandle gold = rt.handle("gold");
  const ClassHandle bronze = rt.handle("bronze");

  const auto busy = [] {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(200);
    while (std::chrono::steady_clock::now() < until) {
    }
  };
  std::size_t gold_shed = 0;
  std::size_t bronze_shed = 0;
  for (std::size_t i = 0; i < 20000; ++i) {
    if (rt.submit(gold, TaskFn(busy)) == SubmitResult::kShed) ++gold_shed;
    if (rt.submit(bronze, TaskFn(busy)) == SubmitResult::kShed) {
      ++bronze_shed;
    }
  }
  ASSERT_TRUE(rt.drain_service(30.0));
  const obs::EpochReport mid = rt.service_snapshot();
  EXPECT_EQ(gold_shed, 0u);  // gold never sheds, it backpressures
  ASSERT_EQ(mid.classes.size(), 2u);
  EXPECT_EQ(mid.classes[gold.id].shed, 0u);
  EXPECT_GT(mid.classes[bronze.id].shed, 0u);
  // Shedding only engages above the watermark.
  EXPECT_GE(mid.queue_depth_hwm, so.high_watermark);

  // Recovery: light load after the storm sheds nothing.
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(rt.submit(bronze, TaskFn([] {})), SubmitResult::kQueued);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_TRUE(rt.drain_service(10.0));
  const obs::EpochReport after = rt.stop_service();
  EXPECT_EQ(after.classes[bronze.id].shed, mid.classes[bronze.id].shed);
  EXPECT_EQ(after.reconcile_slack(), 0u) << after.to_string();
}

TEST(ServiceMode, ShedOldestNeverEvictsGold) {
  // Regression for a fuzz-found bug (service seed 102): kShedOldest used
  // to evict staging.front() regardless of SLA, dropping never-shed
  // tasks. Tier 0 must survive sustained overload under every policy.
  Runtime rt(small_options(2));
  ServiceOptions so;
  so.classes = {{"gold", 0}, {"bronze", 2}};
  so.queue_capacity = 64;
  so.inbox_capacity = 16;
  so.high_watermark = 16;
  so.policy = AdmissionPolicy::kShedOldest;
  so.epoch_s = 0.002;
  rt.start_service(so);
  const ClassHandle gold = rt.handle("gold");
  const ClassHandle bronze = rt.handle("bronze");

  const auto busy = [] {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(200);
    while (std::chrono::steady_clock::now() < until) {
    }
  };
  std::size_t gold_submit_shed = 0;
  for (std::size_t i = 0; i < 20000; ++i) {
    if (rt.submit(gold, TaskFn(busy)) == SubmitResult::kShed) {
      ++gold_submit_shed;
    }
    rt.submit(bronze, TaskFn(busy));
  }
  ASSERT_TRUE(rt.drain_service(30.0));
  const obs::EpochReport report = rt.stop_service();
  EXPECT_EQ(gold_submit_shed, 0u);
  ASSERT_EQ(report.classes.size(), 2u);
  EXPECT_EQ(report.classes[gold.id].shed, 0u);
  EXPECT_GT(report.classes[bronze.id].shed, 0u);
  EXPECT_EQ(report.reconcile_slack(), 0u) << report.to_string();
}

TEST(ServiceMode, BlockPolicyBackpressuresInsteadOfShedding) {
  Runtime rt(small_options(2));
  ServiceOptions so;
  so.classes = {{"c", 1}};
  so.queue_capacity = 32;
  so.inbox_capacity = 8;
  so.policy = AdmissionPolicy::kBlock;
  rt.start_service(so);
  const ClassHandle c = rt.handle("c");
  const auto busy = [] {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(500);
    while (std::chrono::steady_clock::now() < until) {
    }
  };
  std::size_t deferred = 0;
  for (std::size_t i = 0; i < 20000; ++i) {
    const SubmitResult res = rt.submit(c, TaskFn(busy));
    ASSERT_NE(res, SubmitResult::kShed);
    if (res == SubmitResult::kBackpressure) ++deferred;
  }
  EXPECT_GT(deferred, 0u);
  ASSERT_TRUE(rt.drain_service(30.0));
  const obs::EpochReport report = rt.stop_service();
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.deferred, deferred);
  EXPECT_EQ(report.reconcile_slack(), 0u) << report.to_string();
}

TEST(ServiceMode, ShedHookSeesEveryShedTagExactlyOnce) {
  Runtime rt(small_options(2));
  std::mutex mu;
  std::set<std::uint64_t> shed_tags;
  ServiceOptions so;
  so.classes = {{"c", 1}};
  so.queue_capacity = 32;
  so.inbox_capacity = 8;
  so.high_watermark = 8;
  so.policy = AdmissionPolicy::kShedOldest;
  so.shed_hook = [&](std::size_t, std::uint64_t tag) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(shed_tags.insert(tag).second) << "tag shed twice: " << tag;
  };
  rt.start_service(so);
  const ClassHandle c = rt.handle("c");
  std::mutex ran_mu;
  std::set<std::uint64_t> ran_tags;
  const auto busy = [&](std::uint64_t tag) {
    return TaskFn([&ran_mu, &ran_tags, tag] {
      {
        std::lock_guard<std::mutex> lock(ran_mu);
        ran_tags.insert(tag);
      }
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::microseconds(100);
      while (std::chrono::steady_clock::now() < until) {
      }
    });
  };
  for (std::uint64_t tag = 0; tag < 20000; ++tag) {
    rt.submit(c, busy(tag), tag);
  }
  ASSERT_TRUE(rt.drain_service(30.0));
  const obs::EpochReport report = rt.stop_service();
  // The overload oracle: no task both shed and executed, and together
  // with backpressure they cover everything offered.
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_GT(shed_tags.size(), 0u);
  EXPECT_EQ(shed_tags.size(), report.shed);
  for (std::uint64_t tag : shed_tags) {
    EXPECT_EQ(ran_tags.count(tag), 0u) << "tag both shed and run: " << tag;
  }
  EXPECT_EQ(ran_tags.size() + shed_tags.size() + report.deferred,
            report.offered);
}

TEST(ServiceMode, SpawnedTasksAreCountedAndRun) {
  Runtime rt(small_options(4));
  ServiceOptions so;
  so.classes = {{"parent", 1}, {"child", 1}};
  rt.start_service(so);
  const ClassHandle parent = rt.handle("parent");
  const ClassHandle child = rt.handle("child");
  std::atomic<std::uint64_t> children{0};
  Runtime* rtp = &rt;
  for (std::size_t i = 0; i < 500; ++i) {
    rt.submit(parent, TaskFn([rtp, child, &children] {
                rtp->spawn(child, TaskFn([&children] {
                             children.fetch_add(
                                 1, std::memory_order_relaxed);
                           }));
              }));
  }
  ASSERT_TRUE(rt.drain_service(20.0));
  const obs::EpochReport report = rt.stop_service();
  EXPECT_EQ(children.load(), 500u);
  EXPECT_EQ(report.spawned, 500u);
  EXPECT_EQ(report.executed, report.admitted + report.spawned);
  EXPECT_EQ(report.reconcile_slack(), 0u) << report.to_string();
}

TEST(ServiceMode, PlannerPublishesEpochsAndRecordsReports) {
  Runtime rt(small_options(4));
  ServiceOptions so;
  so.classes = {{"heavy", 1}, {"light", 1}};
  so.epoch_s = 0.001;  // fast epochs so a short test sees several
  rt.start_service(so);
  const ClassHandle heavy = rt.handle("heavy");
  const ClassHandle light = rt.handle("light");
  const auto until_us = [](std::int64_t us) {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(us);
    while (std::chrono::steady_clock::now() < until) {
    }
  };
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
             .count() < 0.25) {
    rt.submit(heavy, TaskFn([&] { until_us(80); }));
    rt.submit(light, TaskFn([&] { until_us(10); }));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(rt.drain_service(20.0));
  EXPECT_GT(rt.plan_epochs_published(), 2u);
  rt.stop_service();
  const auto reports = rt.epoch_reports();
  EXPECT_GT(reports.size(), 2u);
  std::uint64_t delta_sum = 0;
  for (const auto& r : reports) delta_sum += r.executed;
  EXPECT_GT(delta_sum, 0u);
  // Planner health exists and saw no degradation on a healthy backend.
  EXPECT_FALSE(rt.service_health().degraded);
}

TEST(ServiceMode, StalenessWatchdogDegradesToUniform) {
  Runtime rt(small_options(2));
  ServiceOptions so;
  so.classes = {{"c", 1}};
  so.epoch_s = 0.001;
  // Impossible staleness bound: every publish gap exceeds it, so the
  // strike counter must escalate into degraded mode almost immediately.
  so.max_staleness_epochs = 0;
  so.max_staleness_strikes = 2;
  rt.start_service(so);
  const ClassHandle c = rt.handle("c");
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
             .count() < 0.2) {
    rt.submit(c, TaskFn([] {}));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_TRUE(rt.drain_service(10.0));
  const obs::EpochReport report = rt.stop_service();
  const core::HealthReport health = rt.service_health();
  EXPECT_TRUE(health.degraded);
  EXPECT_GE(health.degradations, 1u);
  EXPECT_GT(report.staleness_events, 0u);
  EXPECT_EQ(report.reconcile_slack(), 0u) << report.to_string();
}

TEST(ServiceMode, RestartAfterStopServesAgain) {
  Runtime rt(small_options(2));
  for (int round = 0; round < 2; ++round) {
    ServiceOptions so;
    so.classes = {{"c", 1}};
    rt.start_service(so);
    std::atomic<int> ran{0};
    const ClassHandle c = rt.handle("c");
    for (int i = 0; i < 1000; ++i) {
      rt.submit(c, TaskFn([&ran] { ++ran; }));
    }
    ASSERT_TRUE(rt.drain_service(10.0));
    const obs::EpochReport report = rt.stop_service();
    EXPECT_EQ(static_cast<std::uint64_t>(ran.load()), report.executed);
    EXPECT_EQ(report.reconcile_slack(), 0u);
  }
}

TEST(ServiceWakeup, SparseArrivalP99UnderSleepCap) {
  // Satellite: the deep-sleep tier must wake on arrival, not on timer
  // expiry. Submit sparse one-at-a-time arrivals to a fully idle (deep
  // sleeping) runtime and measure submit -> execution-start latency.
  // The condvar wake makes the common case tens of microseconds; the
  // 256us wait_for backstop bounds even a lost wakeup, so p99 must stay
  // below the old open-loop sleep cap.
  Runtime rt(small_options(2));
  ServiceOptions so;
  so.classes = {{"ping", 1}};
  rt.start_service(so);
  const ClassHandle ping = rt.handle("ping");

  constexpr std::size_t kSamples = 300;
  std::vector<double> latency_us(kSamples, 0.0);
  for (std::size_t i = 0; i < kSamples; ++i) {
    // Let every worker reach the deep-sleep tier (spin+yield+ramp is
    // ~64 sweeps; 2ms is far past it).
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::atomic<bool> done{false};
    const std::uint64_t t0 = util::FastClock::ticks();
    rt.submit(ping, TaskFn([&latency_us, &done, t0, i] {
                latency_us[i] = util::FastClock::seconds_since(t0) * 1e6;
                done.store(true, std::memory_order_release);
              }));
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  rt.stop_service();
  std::vector<double> sorted = latency_us;
  std::sort(sorted.begin(), sorted.end());
  const double p50 = sorted[kSamples / 2];
  const double p99 = sorted[(kSamples * 99) / 100];
  // The old behaviour (open-loop 256us sleeps) would put every sparse
  // arrival's latency near the cap; the wakeup makes p50 far smaller
  // and keeps p99 under it even with an occasional timeout-backstop hit.
  // Sanitizer instrumentation multiplies wakeup cost, so those builds
  // get headroom — the regression this guards (timer-expiry wakeups)
  // would overshoot even the relaxed bound.
  const double budget_us = 256.0 * (kSanitized ? 8 : 1);
  EXPECT_LT(p50, budget_us) << "p50=" << p50 << "us p99=" << p99 << "us";
  EXPECT_LT(p99, budget_us) << "p50=" << p50 << "us p99=" << p99 << "us";
}

TEST(ServiceMetrics, EpochDeltaSubtractsCumulatives) {
  obs::EpochReport a;
  a.offered = 100;
  a.executed = 90;
  a.shed = 5;
  a.span_s = 2.0;
  a.queue_depth_hwm = 40;
  a.classes.resize(1);
  a.classes[0].offered = 100;
  obs::EpochReport b = a;
  b.offered = 150;
  b.executed = 140;
  b.shed = 7;
  b.span_s = 3.0;
  b.classes[0].offered = 150;
  const obs::EpochReport d = obs::ServiceMetrics::delta(b, a);
  EXPECT_EQ(d.offered, 50u);
  EXPECT_EQ(d.executed, 50u);
  EXPECT_EQ(d.shed, 2u);
  EXPECT_DOUBLE_EQ(d.span_s, 1.0);
  EXPECT_EQ(d.queue_depth_hwm, 40u);  // gauges keep `now`'s value
  EXPECT_EQ(d.classes[0].offered, 50u);
}

TEST(ServiceMetrics, SojournPercentileInterpolates) {
  std::uint64_t hist[obs::kExecBuckets] = {};
  hist[0] = 100;
  const double p50 = obs::sojourn_percentile_us(hist, 50.0);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 2.0);
  std::uint64_t empty[obs::kExecBuckets] = {};
  EXPECT_DOUBLE_EQ(obs::sojourn_percentile_us(empty, 99.0), 0.0);
}

}  // namespace
}  // namespace eewa::rt
