// Tests for task traces and the synthetic generators.
#include <gtest/gtest.h>

#include <algorithm>

#include "trace/synthetic.hpp"
#include "trace/task_trace.hpp"

namespace eewa::trace {
namespace {

TEST(TaskTrace, AggregatesCounts) {
  TaskTrace t;
  t.name = "x";
  t.class_names = {"a", "b"};
  t.batches.resize(2);
  t.batches[0].tasks = {{0, 1.0, 0, 0}, {1, 2.0, 0, 0}};
  t.batches[1].tasks = {{0, 0.5, 0, 0}};
  EXPECT_EQ(t.task_count(), 3u);
  EXPECT_DOUBLE_EQ(t.total_work_s(), 3.5);
  EXPECT_DOUBLE_EQ(t.batches[0].total_work_s(), 3.0);
  EXPECT_NO_THROW(t.validate());
}

TEST(TaskTrace, ValidationCatchesBadTasks) {
  TaskTrace t;
  t.class_names = {"a"};
  t.batches.resize(1);
  t.batches[0].tasks = {{5, 1.0, 0, 0}};  // class id out of range
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t.batches[0].tasks = {{0, 0.0, 0, 0}};  // non-positive work
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t.batches[0].tasks = {{0, 1.0, 0, 1.5}};  // mem_alpha out of range
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t.batches[0].tasks = {{0, 1.0, -0.5, 0}};  // negative cmi
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(TaskTrace, CsvHasHeaderAndOneRowPerTask) {
  TaskTrace t;
  t.name = "x";
  t.class_names = {"a"};
  t.batches.resize(1);
  t.batches[0].tasks = {{0, 1.0, 0.1, 0.2}, {0, 2.0, 0, 0}};
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("batch,class,work_s"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.classes = {{"c", 10, 1.0, 0.3, 0.0, 0.0}};
  spec.batches = 3;
  spec.seed = 99;
  const auto a = generate(spec);
  const auto b = generate(spec);
  ASSERT_EQ(a.task_count(), b.task_count());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    for (std::size_t j = 0; j < a.batches[i].tasks.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.batches[i].tasks[j].work_s,
                       b.batches[i].tasks[j].work_s);
    }
  }
  spec.seed = 100;
  const auto c = generate(spec);
  EXPECT_NE(a.batches[0].tasks[0].work_s, c.batches[0].tasks[0].work_s);
}

TEST(Synthetic, HonorsClassStructure) {
  SyntheticSpec spec;
  spec.classes = {{"big", 4, 2.0, 0.0, 0.01, 0.3},
                  {"small", 8, 0.5, 0.0, 0.0, 0.0}};
  spec.batches = 2;
  spec.batch_jitter_cv = 0.0;
  const auto t = generate(spec);
  EXPECT_EQ(t.class_names.size(), 2u);
  EXPECT_EQ(t.batch_count(), 2u);
  ASSERT_EQ(t.batches[0].tasks.size(), 12u);
  // With zero jitter/cv, works are exact.
  EXPECT_DOUBLE_EQ(t.batches[0].tasks[0].work_s, 2.0);
  EXPECT_DOUBLE_EQ(t.batches[0].tasks[4].work_s, 0.5);
  EXPECT_DOUBLE_EQ(t.batches[0].tasks[0].cmi, 0.01);
  EXPECT_DOUBLE_EQ(t.batches[0].tasks[0].mem_alpha, 0.3);
}

TEST(Synthetic, RejectsEmptySpec) {
  EXPECT_THROW(generate(SyntheticSpec{}), std::invalid_argument);
}

TEST(Synthetic, GeometricClassesSpreadWorkloads) {
  const auto t = geometric_classes(4, 8, 1.0, 8.0, 2, 7, 0.0);
  ASSERT_EQ(t.class_names.size(), 4u);
  // First class ~1.0, last ~1/8 (zero cv, but batch jitter applies; use
  // ratios within one batch which share the jitter... classes jitter
  // independently, so compare loosely).
  const double w0 = t.batches[0].tasks[0].work_s;
  const double w3 = t.batches[0].tasks[3 * 8].work_s;
  EXPECT_GT(w0 / w3, 4.0);
  EXPECT_LT(w0 / w3, 16.0);
}

TEST(Synthetic, BalancedIsNearlyUniform) {
  const auto t = balanced(64, 0.1, 2, 3);
  double lo = 1e9, hi = 0;
  for (const auto& task : t.batches[0].tasks) {
    lo = std::min(lo, task.work_s);
    hi = std::max(hi, task.work_s);
  }
  EXPECT_LT(hi / lo, 1.5);
}

TEST(Synthetic, BimodalHasTwoModes) {
  const auto t = bimodal(4, 1.0, 60, 0.05, 2, 5);
  ASSERT_EQ(t.class_names.size(), 2u);
  EXPECT_EQ(t.batches[0].tasks.size(), 64u);
  EXPECT_GT(t.batches[0].tasks[0].work_s,
            5.0 * t.batches[0].tasks[10].work_s);
}

}  // namespace
}  // namespace eewa::trace
