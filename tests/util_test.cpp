// Unit tests for the util library: RNG determinism and distribution
// sanity, streaming statistics, histograms, bit-level I/O, CSV and table
// formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/aligned.hpp"
#include "util/bit_io.hpp"
#include "util/cpu_affinity.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "util/tournament_tree.hpp"

namespace eewa::util {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  const auto x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(x, c.next());
}

TEST(Xoshiro256, DeterministicSequences) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(1);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.02);
}

TEST(Xoshiro256, BoundedCoversRangeWithoutEscaping) {
  Xoshiro256 rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.bounded(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(Xoshiro256, ExponentialHasRequestedMean) {
  Xoshiro256 rng(4);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.1);
}

TEST(Xoshiro256, LognormalMeanCvMatches) {
  Xoshiro256 rng(5);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.lognormal_mean_cv(10.0, 0.5));
  EXPECT_NEAR(s.mean(), 10.0, 0.3);
  EXPECT_NEAR(s.cv(), 0.5, 0.05);
}

TEST(Xoshiro256, NormalMoments) {
  Xoshiro256 rng(6);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(ZipfSampler, SkewsTowardLowRanks) {
  Xoshiro256 rng(7);
  ZipfSampler zipf(100, 1.2);
  std::size_t low = 0, total = 20000;
  for (std::size_t i = 0; i < total; ++i) {
    if (zipf.sample(rng) < 10) ++low;
  }
  // With s=1.2 the top decile carries well over half the mass.
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(total), 0.5);
}

TEST(UniformExcluding, NeverReturnsSelfAndCoversEveryoneElse) {
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    for (std::size_t self = 0; self < n; ++self) {
      std::set<std::size_t> seen;
      std::uint64_t state = 12345;
      for (int i = 0; i < 256; ++i) {
        state = mix64(state);
        const std::size_t v = uniform_excluding(state, self, n);
        EXPECT_NE(v, self);
        EXPECT_LT(v, n);
        seen.insert(v);
      }
      EXPECT_EQ(seen.size(), n - 1);
    }
  }
}

TEST(UniformExcluding, VictimDistributionIsUnbiased) {
  // The bug this guards against: remapping a self-hit draw to
  // (self + 1) % n gives that neighbour twice everyone else's
  // probability. Chi-square over the mix64 stream the steal path uses;
  // with 200k draws a doubled cell scores X² in the tens of thousands,
  // so a generous threshold still rejects it decisively.
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    for (std::size_t self : {std::size_t{0}, n - 1}) {
      std::vector<std::size_t> counts(n, 0);
      std::uint64_t state = 0x9e3779b97f4a7c15ull + n;
      const std::size_t draws = 200000;
      for (std::size_t i = 0; i < draws; ++i) {
        state = mix64(state);
        ++counts[uniform_excluding(state, self, n)];
      }
      EXPECT_EQ(counts[self], 0u);
      const double expect =
          static_cast<double>(draws) / static_cast<double>(n - 1);
      double chi2 = 0.0;
      for (std::size_t v = 0; v < n; ++v) {
        if (v == self) continue;
        const double d = static_cast<double>(counts[v]) - expect;
        chi2 += d * d / expect;
      }
      // df <= 6; p=0.001 critical value is ~22.5.
      EXPECT_LT(chi2, 25.0) << "n=" << n << " self=" << self;
    }
  }
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256 rng(8);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(1.0, 3.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Summary, PercentilesOfKnownSample) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 0.1);
}

TEST(Summary, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({5.0});
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.p99, 5.0);
}

TEST(PercentileSorted, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 10.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);   // underflow -> first bin
  h.add(100.0);  // overflow -> last bin
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(Histogram, WeightedAndAscii) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 3.0);
  EXPECT_DOUBLE_EQ(h.count(1), 3.0);
  EXPECT_NE(h.ascii().find('#'), std::string::npos);
}

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(BitIo, RoundTripsVariousWidths) {
  BitWriter bw;
  bw.write(0b101, 3);
  bw.write(0xDEADBEEF, 32);
  bw.write(1, 1);
  bw.write(0x1FFFFF, 21);
  const auto bytes = bw.take();
  BitReader br({bytes.data(), bytes.size()});
  EXPECT_EQ(br.read(3), 0b101u);
  EXPECT_EQ(br.read(32), 0xDEADBEEFu);
  EXPECT_EQ(br.read(1), 1u);
  EXPECT_EQ(br.read(21), 0x1FFFFFu);
}

TEST(BitIo, RandomizedRoundTrip) {
  Xoshiro256 rng(11);
  std::vector<std::pair<std::uint64_t, unsigned>> items;
  BitWriter bw;
  for (int i = 0; i < 2000; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng.bounded(56));
    const std::uint64_t value =
        rng.next() & ((width == 64) ? ~0ULL : ((1ULL << width) - 1));
    items.emplace_back(value, width);
    bw.write(value, width);
  }
  const auto bytes = bw.take();
  BitReader br({bytes.data(), bytes.size()});
  for (const auto& [value, width] : items) {
    ASSERT_EQ(br.read(width), value);
  }
}

TEST(BitIo, ReadPastEndYieldsZeros) {
  const std::vector<std::uint8_t> one{0xFF};
  BitReader br({one.data(), one.size()});
  EXPECT_EQ(br.read(8), 0xFFu);
  EXPECT_EQ(br.read(8), 0u);
  EXPECT_TRUE(br.exhausted());
}

TEST(BitIo, BitCountTracksWrites) {
  BitWriter bw;
  bw.write(1, 1);
  bw.write(0, 10);
  EXPECT_EQ(bw.bit_count(), 11u);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv;
  csv.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  const std::string s = csv.str();
  EXPECT_NE(s.find("plain,\"with,comma\",\"with\"\"quote\""),
            std::string::npos);
}

TEST(Csv, RowValuesMixedTypes) {
  CsvWriter csv;
  csv.row_values("x", 42, 2.5);
  EXPECT_EQ(csv.str(), "x,42,2.5\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add("short", 1);
  t.add("a-much-longer-name", 12345);
  const std::string s = t.str();
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  // Every rendered line has the same width.
  std::size_t first_len = std::string::npos;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    const std::size_t len = nl - pos;
    if (first_len == std::string::npos) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = nl + 1;
  }
}

TEST(TablePrinter, FixedFormatsDecimals) {
  EXPECT_EQ(TablePrinter::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fixed(2.0, 0), "2");
}

TEST(Logging, LevelGateWorks) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(old);
}

TEST(Aligned, CellsOccupyDistinctCacheLines) {
  CachelinePadded<int> cells[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&cells[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&cells[1].value);
  EXPECT_GE(b - a, kCacheLine);
  EXPECT_EQ(a % kCacheLine, 0u);
  *cells[0] = 7;
  EXPECT_EQ(cells[0].value, 7);
  cells[1].value = 9;
  EXPECT_EQ(*cells[1], 9);
}

TEST(CpuAffinity, CountPositiveAndPinningIsSafe) {
  EXPECT_GE(hardware_cpu_count(), 1u);
  // Pinning may be denied (containers); it must never crash and must
  // accept out-of-range ids by wrapping.
  (void)pin_current_thread(0);
  (void)pin_current_thread(hardware_cpu_count() + 5);
  SUCCEED();
}

TEST(Xoshiro256, ChanceRespectsProbability) {
  Xoshiro256 rng(12);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
  Xoshiro256 rng2(13);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(rng2.chance(0.0));
}

TEST(TournamentTree, WinnerIsLowestIndexArgmin) {
  using MinTree = TournamentTree<double, std::less<double>>;
  MinTree t;
  t.reset(5);
  EXPECT_EQ(t.winner(), MinTree::kNone);
  const double keys[] = {3.0, 1.0, 4.0, 1.0, 5.0};
  for (std::size_t i = 0; i < 5; ++i) t.update(i, keys[i]);
  // Ties break to the lowest index — the semantics of the fleet's
  // first-strictly-better linear scans.
  EXPECT_EQ(t.winner(), 1u);
  t.update(1, 10.0);
  EXPECT_EQ(t.winner(), 3u);
  t.update(4, 0.5);
  EXPECT_EQ(t.winner(), 4u);
}

TEST(TournamentTree, DisableRemovesFromContention) {
  using MaxTree = TournamentTree<double, std::greater<double>>;
  MaxTree t;  // argmax flavor
  t.reset(4);
  for (std::size_t i = 0; i < 4; ++i)
    t.update(i, static_cast<double>(i));
  EXPECT_EQ(t.winner(), 3u);
  t.disable(3);
  EXPECT_EQ(t.winner(), 2u);
  EXPECT_FALSE(t.contains(3));
  t.disable(2);
  t.disable(1);
  t.disable(0);
  EXPECT_EQ(t.winner(), MaxTree::kNone);
  t.update(2, 7.0);
  EXPECT_EQ(t.winner(), 2u);
}

TEST(TournamentTree, MatchesLinearScanOnRandomChurn) {
  using MinTree = TournamentTree<double, std::less<double>>;
  MinTree t;
  const std::size_t n = 37;  // deliberately not a power of two
  t.reset(n);
  std::vector<double> keys(n, 0.0);
  std::vector<char> on(n, 0);
  Xoshiro256 rng(7);
  for (int step = 0; step < 2000; ++step) {
    const std::size_t i = static_cast<std::size_t>(rng.uniform() * n) % n;
    if (on[i] && rng.chance(0.3)) {
      t.disable(i);
      on[i] = 0;
    } else {
      keys[i] = rng.uniform() * 8.0;  // collisions likely: tie coverage
      t.update(i, keys[i]);
      on[i] = 1;
    }
    std::size_t best = MinTree::kNone;
    for (std::size_t j = 0; j < n; ++j) {
      if (on[j] && (best == MinTree::kNone || keys[j] < keys[best])) best = j;
    }
    ASSERT_EQ(t.winner(), best) << "step " << step;
  }
}

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
  // Reuse across jobs (the fleet issues one job per epoch).
  std::atomic<std::size_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(10, [&](std::size_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 50u * 45u);
}

TEST(ThreadPool, SingleThreadAndEmptyJobsDegrade) {
  ThreadPool pool(1);  // no workers: parallel_for is a plain loop
  int calls = 0;
  pool.parallel_for(8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 8);
  pool.parallel_for(0, [&](std::size_t) { ADD_FAILURE() << "n == 0"; });
  ThreadPool wide(8);
  std::atomic<int> hits{0};
  wide.parallel_for(3, [&](std::size_t) { hits++; });  // n < threads
  EXPECT_EQ(hits.load(), 3);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must survive a failed job.
  std::atomic<int> hits{0};
  pool.parallel_for(16, [&](std::size_t) { hits++; });
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, RejectsAbsurdThreadCounts) {
  EXPECT_THROW(ThreadPool(ThreadPool::kMaxThreads + 1),
               std::invalid_argument);
  EXPECT_GE(hardware_threads(), 1u);
  ThreadPool hw(0);  // 0 = hardware concurrency
  EXPECT_GE(hw.size(), 1u);
}

TEST(Mix64, StatelessAndStable) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

}  // namespace
}  // namespace eewa::util
