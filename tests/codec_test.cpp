// Tests for the codec building blocks: BWT, MTF, the two RLE schemes and
// canonical Huffman — exact round trips over structured, adversarial and
// randomized inputs (parameterized sweeps), plus known-answer checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"
#include "workloads/bwt.hpp"
#include "workloads/data_gen.hpp"
#include "workloads/huffman.hpp"
#include "workloads/mtf_rle.hpp"

namespace eewa::wl {
namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes from_string(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

// ---------------------------------------------------------------- BWT ----

TEST(Bwt, KnownExampleBanana) {
  // Sorted rotations of "banana": abanan, anaban, ananab, banana,
  // nabana, nanaba -> last column "nnbaaa", original at row 3.
  const auto res = bwt_forward(from_string("banana"));
  EXPECT_EQ(std::string(res.last_column.begin(), res.last_column.end()),
            "nnbaaa");
  EXPECT_EQ(res.primary_index, 3u);
  EXPECT_EQ(bwt_inverse(res.last_column, res.primary_index),
            from_string("banana"));
}

TEST(Bwt, EmptyAndSingleByte) {
  const auto empty = bwt_forward({});
  EXPECT_TRUE(empty.last_column.empty());
  EXPECT_EQ(bwt_inverse({}, 0), Bytes{});
  const auto one = bwt_forward({42});
  EXPECT_EQ(one.last_column, Bytes{42});
  EXPECT_EQ(bwt_inverse(one.last_column, one.primary_index), Bytes{42});
}

TEST(Bwt, AllEqualBytes) {
  const Bytes data(257, 7);
  const auto res = bwt_forward(data);
  EXPECT_EQ(bwt_inverse(res.last_column, res.primary_index), data);
}

TEST(Bwt, PeriodicData) {
  Bytes data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>(i % 3));
  const auto res = bwt_forward(data);
  EXPECT_EQ(bwt_inverse(res.last_column, res.primary_index), data);
}

TEST(Bwt, InverseRejectsBadPrimary) {
  EXPECT_THROW(bwt_inverse({1, 2, 3}, 5), std::invalid_argument);
  EXPECT_THROW(bwt_inverse({}, 1), std::invalid_argument);
}

TEST(Bwt, SortRotationsIsPermutation) {
  const auto data = markov_text(500, 9);
  const auto sa = sort_rotations(data);
  std::vector<std::uint32_t> sorted = sa;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Bwt, GroupsSimilarContext) {
  // BWT of English-like text should have longer same-byte runs than the
  // input (that is why MTF+RLE compress it).
  const auto data = markov_text(4000, 5);
  const auto res = bwt_forward(data);
  auto runs = [](const Bytes& b) {
    std::size_t r = 1;
    for (std::size_t i = 1; i < b.size(); ++i) r += b[i] != b[i - 1];
    return r;
  };
  EXPECT_LT(runs(res.last_column), runs(data));
}

// ---------------------------------------------------------------- MTF ----

TEST(Mtf, KnownSmallExample) {
  // "aab": 'a'=97 -> 97; 'a' now front -> 0; 'b'=98 shifted to 98.
  const auto enc = mtf_encode(from_string("aab"));
  EXPECT_EQ(enc, (Bytes{97, 0, 98}));
  EXPECT_EQ(mtf_decode(enc), from_string("aab"));
}

TEST(Mtf, RepeatedSymbolsBecomeZeros) {
  const auto enc = mtf_encode(from_string("aaaaaa"));
  for (std::size_t i = 1; i < enc.size(); ++i) EXPECT_EQ(enc[i], 0);
}

TEST(Mtf, EmptyInput) {
  EXPECT_TRUE(mtf_encode({}).empty());
  EXPECT_TRUE(mtf_decode({}).empty());
}

// ---------------------------------------------------------------- RLE ----

TEST(RleLiteral, ShortRunsPassThrough) {
  const auto data = from_string("abcabc");
  EXPECT_EQ(rle_literal_encode(data), data);
  EXPECT_EQ(rle_literal_decode(data), data);
}

TEST(RleLiteral, LongRunsCompressed) {
  const Bytes data(100, 'x');
  const auto enc = rle_literal_encode(data);
  EXPECT_LT(enc.size(), data.size());
  EXPECT_EQ(rle_literal_decode(enc), data);
}

TEST(RleLiteral, RunOfExactlyFour) {
  const Bytes data(4, 'y');
  const auto enc = rle_literal_encode(data);
  ASSERT_EQ(enc.size(), 5u);
  EXPECT_EQ(enc[4], 0);  // 4 bytes + count 0
  EXPECT_EQ(rle_literal_decode(enc), data);
}

TEST(RleLiteral, VeryLongRunSplits) {
  const Bytes data(1000, 'z');
  EXPECT_EQ(rle_literal_decode(rle_literal_encode(data)), data);
}

TEST(RleLiteral, TruncatedRunThrows) {
  const Bytes bad(4, 'q');  // 4 equal bytes but missing the count byte
  EXPECT_THROW(rle_literal_decode(bad), std::invalid_argument);
}

TEST(RleZeros, CompressesZeroRuns) {
  Bytes data(50, 0);
  data.push_back(7);
  const auto enc = rle_zeros_encode(data);
  EXPECT_LT(enc.size(), data.size());
  EXPECT_EQ(rle_zeros_decode(enc), data);
}

TEST(RleZeros, NonZeroBytesUntouched) {
  const auto data = from_string("hello");
  EXPECT_EQ(rle_zeros_encode(data), data);
}

TEST(RleZeros, TruncatedThrows) {
  EXPECT_THROW(rle_zeros_decode({0}), std::invalid_argument);
}

// ------------------------------------------------------------- Huffman ----

TEST(Huffman, RoundTripsText) {
  const auto data = markov_text(5000, 3);
  const auto enc = huffman_encode(data);
  EXPECT_EQ(huffman_decode(enc), data);
  EXPECT_LT(enc.size(), data.size());  // text is compressible
}

TEST(Huffman, EmptyInput) {
  const auto enc = huffman_encode({});
  EXPECT_EQ(huffman_decode(enc), Bytes{});
}

TEST(Huffman, SingleSymbolAlphabet) {
  const Bytes data(100, 'a');
  const auto enc = huffman_encode(data);
  EXPECT_EQ(huffman_decode(enc), data);
  EXPECT_LT(enc.size(), 200u);
}

TEST(Huffman, CodeLengthsSatisfyKraft) {
  std::array<std::uint64_t, 256> freq{};
  util::Xoshiro256 rng(17);
  for (auto& f : freq) f = rng.bounded(1000);
  const auto len = huffman_code_lengths(freq);
  double kraft = 0.0;
  for (int s = 0; s < 256; ++s) {
    const auto l = len[static_cast<std::size_t>(s)];
    if (freq[static_cast<std::size_t>(s)] > 0) {
      EXPECT_GT(l, 0u);
      EXPECT_LE(l, kHuffMaxCodeLen);
      kraft += std::pow(2.0, -static_cast<double>(l));
    } else {
      EXPECT_EQ(l, 0u);
    }
  }
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, LengthLimitHoldsUnderExtremeSkew) {
  // Fibonacci-like frequencies would produce degenerate depths without
  // the damping loop.
  std::array<std::uint64_t, 256> freq{};
  std::uint64_t a = 1, b = 1;
  for (int s = 0; s < 40; ++s) {
    freq[static_cast<std::size_t>(s)] = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto len = huffman_code_lengths(freq);
  for (auto l : len) EXPECT_LE(l, kHuffMaxCodeLen);
}

TEST(Huffman, DecodeRejectsGarbage) {
  Bytes garbage(100, 0xFF);
  EXPECT_THROW(huffman_decode(garbage), std::invalid_argument);
}

// ------------------------------------------- randomized round-trip sweep --

struct CodecCase {
  const char* generator;
  std::size_t size;
  std::uint64_t seed;
};

class CodecRoundTrip : public ::testing::TestWithParam<CodecCase> {
 protected:
  Bytes input() const {
    const auto& p = GetParam();
    const std::string g = p.generator;
    if (g == "text") return markov_text(p.size, p.seed);
    if (g == "skewed") return skewed_bytes(p.size, p.seed);
    if (g == "random") return random_bytes(p.size, p.seed);
    if (g == "zeros") return Bytes(p.size, 0);
    return {};
  }
};

TEST_P(CodecRoundTrip, Bwt) {
  const auto data = input();
  const auto res = bwt_forward(data);
  EXPECT_EQ(bwt_inverse(res.last_column, res.primary_index), data);
}

TEST_P(CodecRoundTrip, Mtf) {
  const auto data = input();
  EXPECT_EQ(mtf_decode(mtf_encode(data)), data);
}

TEST_P(CodecRoundTrip, RleLiteral) {
  const auto data = input();
  EXPECT_EQ(rle_literal_decode(rle_literal_encode(data)), data);
}

TEST_P(CodecRoundTrip, RleZeros) {
  const auto data = input();
  EXPECT_EQ(rle_zeros_decode(rle_zeros_encode(data)), data);
}

TEST_P(CodecRoundTrip, Huffman) {
  const auto data = input();
  EXPECT_EQ(huffman_decode(huffman_encode(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTrip,
    ::testing::Values(CodecCase{"text", 100, 1}, CodecCase{"text", 4096, 2},
                      CodecCase{"skewed", 333, 3},
                      CodecCase{"skewed", 2048, 4},
                      CodecCase{"random", 1000, 5},
                      CodecCase{"zeros", 512, 6}, CodecCase{"text", 1, 7},
                      CodecCase{"random", 2, 8}),
    [](const auto& info) {
      return std::string(info.param.generator) + "_" +
             std::to_string(info.param.size);
    });

}  // namespace
}  // namespace eewa::wl
