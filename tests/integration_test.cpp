// End-to-end integration tests: the paper's headline claims reproduced
// on small deterministic instances of the real benchmark suite running
// through the simulator — Fig. 6 ordering (EEWA < Cilk-D < Cilk energy,
// small slowdown), Fig. 7 ordering on fixed AMC, Fig. 8's c-group shape
// for SHA-1, Fig. 9 scaling, and Table III-style overhead bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulate.hpp"
#include "workloads/suite.hpp"

namespace eewa {
namespace {

sim::SimOptions options16() {
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 42;
  return opt;
}

trace::TaskTrace bench_trace(const char* name, std::size_t batches = 24) {
  return wl::build_trace(wl::find_benchmark(name),
                         wl::reference_calibration(), batches, 2024);
}

struct Fig6Row {
  double cilk_time, cilk_energy;
  double cilkd_time, cilkd_energy;
  double eewa_time, eewa_energy;
};

Fig6Row run_fig6(const trace::TaskTrace& t, const sim::SimOptions& opt) {
  sim::CilkPolicy cilk;
  sim::CilkDPolicy cilkd;
  sim::EewaPolicy eewa(t.class_names);
  const auto a = sim::simulate(t, cilk, opt);
  const auto b = sim::simulate(t, cilkd, opt);
  const auto c = sim::simulate(t, eewa, opt);
  return {a.time_s, a.energy_j, b.time_s, b.energy_j, c.time_s, c.energy_j};
}

class Fig6Shape : public ::testing::TestWithParam<const char*> {};

TEST_P(Fig6Shape, EewaSavesEnergyWithSmallSlowdown) {
  const auto t = bench_trace(GetParam());
  const auto row = run_fig6(t, options16());
  // Energy ordering: EEWA < Cilk; Cilk-D between (or equal-ish).
  EXPECT_LT(row.eewa_energy, row.cilk_energy) << GetParam();
  EXPECT_LE(row.cilkd_energy, row.cilk_energy * 1.001) << GetParam();
  EXPECT_LT(row.eewa_energy, row.cilkd_energy * 1.02) << GetParam();
  // Performance degradation bounded (paper: <= 3.7%; we allow 10%).
  EXPECT_LT(row.eewa_time / row.cilk_time, 1.10) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, Fig6Shape,
                         ::testing::Values("BWC", "Bzip-2", "DMC", "JE",
                                           "LZW", "MD5", "SHA-1"));

TEST(Fig6Shape, OrderingRobustAcrossSeeds) {
  // The headline ordering must not be an artifact of the default seed.
  for (const std::uint64_t seed : {7u, 99u, 31415u}) {
    for (const char* name : {"MD5", "BWC"}) {
      const auto t = wl::build_trace(wl::find_benchmark(name),
                                     wl::reference_calibration(), 24, seed);
      const auto row = run_fig6(t, options16());
      EXPECT_LT(row.eewa_energy, row.cilk_energy)
          << name << " seed " << seed;
      EXPECT_LT(row.eewa_energy, row.cilkd_energy * 1.03)
          << name << " seed " << seed;
      EXPECT_LT(row.eewa_time / row.cilk_time, 1.12)
          << name << " seed " << seed;
    }
  }
}

TEST(Fig7Shape, CilkWorstWatsMiddleEewaBest) {
  const auto t = bench_trace("MD5");
  const auto opt = options16();
  // Get EEWA's modal configuration first.
  sim::EewaPolicy probe(t.class_names);
  sim::Machine m(opt);
  double time = 0.0;
  for (const auto& batch : t.batches) time = m.run_batch(probe, batch, time);
  const auto rungs = probe.modal_rungs(m);

  sim::CilkPolicy cilk(rungs);
  sim::WatsPolicy wats(rungs, t.class_names);
  sim::EewaPolicy eewa(t.class_names);
  const auto rc = sim::simulate(t, cilk, opt);
  const auto rw = sim::simulate(t, wats, opt);
  const auto re = sim::simulate(t, eewa, opt);
  // The paper's ordering: Cilk 1.17-2.92x, WATS 1.05-1.24x of EEWA.
  EXPECT_GT(rc.time_s / re.time_s, 1.05);
  EXPECT_GT(rc.time_s, rw.time_s);
  EXPECT_GE(rw.time_s / re.time_s, 0.95);
}

TEST(Fig8Shape, Sha1SettlesIntoFastAndParkedGroups) {
  const auto t = bench_trace("SHA-1", 10);
  sim::EewaPolicy eewa(t.class_names);
  const auto res = sim::simulate(t, eewa, options16());
  ASSERT_EQ(res.batches.size(), 10u);
  // Batch 0: measurement at the top frequency.
  EXPECT_EQ(res.batches[0].cores_per_rung[0], 16u);
  // Later batches: a minority of fast cores, a majority parked at the
  // bottom rung (Fig. 8's 5-at-2.5GHz / 11-at-0.8GHz shape).
  std::size_t parked_batches = 0;
  for (std::size_t b = 1; b < res.batches.size(); ++b) {
    const auto& cpr = res.batches[b].cores_per_rung;
    if (cpr[3] >= 8) ++parked_batches;
    EXPECT_LT(cpr[0], 16u);
  }
  EXPECT_GE(parked_batches, 6u);
}

TEST(Fig9Shape, SavingsGrowWithCores) {
  const auto t = bench_trace("DMC", 6);
  auto saving = [&](std::size_t cores) {
    sim::SimOptions opt;
    opt.cores = cores;
    opt.seed = 42;
    sim::CilkPolicy cilk;
    sim::EewaPolicy eewa(t.class_names);
    const auto a = sim::simulate(t, cilk, opt);
    const auto c = sim::simulate(t, eewa, opt);
    return 1.0 - c.energy_j / a.energy_j;
  };
  const double s4 = saving(4);
  const double s8 = saving(8);
  const double s16 = saving(16);
  EXPECT_GE(s8, s4 - 0.02);
  EXPECT_GT(s16, s4);
}

TEST(Table3Shape, AdjusterOverheadTinyFractionOfRuntime) {
  const auto t = bench_trace("Bzip-2", 6);
  sim::EewaPolicy eewa(t.class_names);
  const auto res = sim::simulate(t, eewa, options16());
  double overhead = 0.0;
  for (const auto& b : res.batches) overhead += b.overhead_s;
  EXPECT_LT(overhead / res.time_s, 0.02);  // paper: < 2%
}

TEST(EnergyAccounting, WholeMachineEnergyConsistent) {
  const auto t = bench_trace("LZW", 4);
  sim::CilkPolicy cilk;
  const auto opt = options16();
  const auto res = sim::simulate(t, cilk, opt);
  // Cilk spins everything at F0: whole-machine power is exactly the
  // all-active envelope.
  const double expected = opt.power.machine_all_active_w(16, 0) * res.time_s;
  EXPECT_NEAR(res.energy_j, expected, expected * 0.01);
}

TEST(CrossPolicy, TotalWorkInvariantAcrossPolicies) {
  // Same trace, same total residency-at-F0-equivalent work: the active
  // execution time differs only by frequency scaling, not lost tasks.
  const auto t = bench_trace("JE", 4);
  const auto opt = options16();
  sim::CilkPolicy cilk;
  sim::EewaPolicy eewa(t.class_names);
  const auto a = sim::simulate(t, cilk, opt);
  const auto c = sim::simulate(t, eewa, opt);
  EXPECT_GT(a.time_s, 0.0);
  EXPECT_GT(c.time_s, 0.0);
  // Times stay commensurate: EEWA removes slack but may also gain a bit
  // from workload-aware placement; it must not diverge either way.
  EXPECT_GE(c.time_s, a.time_s * 0.85);
  EXPECT_LE(c.time_s, a.time_s * 1.15);
}

}  // namespace
}  // namespace eewa
