// Unit tests for the energy library: the power model's physics
// invariants, the energy account's integration, the model-based meter
// replaying a DVFS trace, and RAPL against a fake powercap tree.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "dvfs/trace_backend.hpp"
#include "energy/energy_account.hpp"
#include "energy/model_meter.hpp"
#include "energy/power_model.hpp"
#include "energy/rapl_meter.hpp"

namespace eewa::energy {
namespace {

namespace fs = std::filesystem;

TEST(PowerModel, OpteronPresetIsMonotonic) {
  const auto m = PowerModel::opteron8380_server();
  EXPECT_TRUE(m.monotonic());
  EXPECT_GT(m.floor_w(), 0.0);
  // Top rung draws much more than bottom rung.
  EXPECT_GT(m.core_power_w(0, true), 2.5 * m.core_power_w(3, true));
}

TEST(PowerModel, HaltCheaperThanSpin) {
  const auto m = PowerModel::opteron8380_server();
  for (std::size_t j = 0; j < m.ladder().size(); ++j) {
    EXPECT_LT(m.core_power_w(j, false), m.core_power_w(j, true));
  }
}

TEST(PowerModel, DynamicScalesWithFV2) {
  const auto m = PowerModel::opteron8380_server();
  const double expected_ratio =
      (2.5 * 1.35 * 1.35) / (0.8 * 0.95 * 0.95);
  EXPECT_NEAR(m.dynamic_power_w(0) / m.dynamic_power_w(3), expected_ratio,
              1e-9);
}

TEST(PowerModel, DownclockedWorkCostsLessEnergy) {
  // The defining property for EEWA: the same amount of work consumes
  // less energy at a lower rung (V² dominates the stretched runtime).
  const auto m = PowerModel::opteron8380_server();
  for (std::size_t j = 1; j < m.ladder().size(); ++j) {
    const double energy_per_work_at_j =
        m.core_power_w(j, true) * m.ladder().slowdown(j);
    EXPECT_LT(energy_per_work_at_j, m.core_power_w(0, true)) << "rung " << j;
  }
}

TEST(PowerModel, MachineAllActive) {
  const auto m = PowerModel::opteron8380_server();
  EXPECT_NEAR(m.machine_all_active_w(16, 0),
              m.floor_w() + 16.0 * m.core_power_w(0, true), 1e-9);
}

TEST(PowerModel, CpuOnlyVariantHasNoFloor) {
  EXPECT_EQ(PowerModel::opteron8380_cpu_only().floor_w(), 0.0);
}

TEST(PowerModel, AllPresetsAreMonotonic) {
  EXPECT_TRUE(PowerModel::opteron8380_server().monotonic());
  EXPECT_TRUE(PowerModel::opteron8380_cpu_only().monotonic());
  EXPECT_TRUE(PowerModel::modern_server().monotonic());
  EXPECT_TRUE(PowerModel::embedded().monotonic());
}

TEST(PowerModel, VoltageRangeDrivesPerWorkSavings) {
  // Energy per unit of work at the bottom rung relative to F0 — the
  // wide-range embedded part saves the most, the narrow-range modern
  // server the least.
  auto per_work_ratio = [](const PowerModel& m) {
    const std::size_t bottom = m.ladder().slowest_index();
    return m.core_power_w(bottom, true) * m.ladder().slowdown(bottom) /
           m.core_power_w(0, true);
  };
  const double k10 = per_work_ratio(PowerModel::opteron8380_server());
  const double modern = per_work_ratio(PowerModel::modern_server());
  const double embedded = per_work_ratio(PowerModel::embedded());
  EXPECT_LT(embedded, k10);
  EXPECT_LT(k10, modern);
  EXPECT_LT(embedded, 1.0);  // downclocked work is cheaper everywhere
  EXPECT_LT(k10, 1.0);
}

TEST(PowerModel, ValidatesInputs) {
  const auto ladder = dvfs::FrequencyLadder::opteron8380();
  EXPECT_THROW(PowerModel(ladder, {1.0, 1.0}, 1.0, 1.0, 1.0),
               std::invalid_argument);  // volts size mismatch
  EXPECT_THROW(
      PowerModel(ladder, {1.0, 1.1, 1.2, 1.3}, 1.0, 1.0, 1.0),
      std::invalid_argument);  // voltage increasing down the ladder
  EXPECT_THROW(PowerModel(ladder, {1.3, 1.2, 1.1, 1.0}, -1.0, 1.0, 1.0),
               std::invalid_argument);
}

TEST(EnergyAccount, IntegratesPowerOverSegments) {
  const auto m = PowerModel::opteron8380_server();
  EnergyAccount acc(m, 2);
  acc.add_core_time(0, 10.0, 0, true);
  acc.add_core_time(1, 10.0, 3, true);
  acc.set_makespan(10.0);
  const double expected = m.core_power_w(0, true) * 10.0 +
                          m.core_power_w(3, true) * 10.0 +
                          m.floor_w() * 10.0;
  EXPECT_NEAR(acc.total_joules(), expected, 1e-9);
  EXPECT_NEAR(acc.residency_s(0, 0), 10.0, 1e-12);
  EXPECT_NEAR(acc.rung_residency_s(3), 10.0, 1e-12);
  EXPECT_NEAR(acc.active_s(), 20.0, 1e-12);
}

TEST(EnergyAccount, HaltedTimeTracked) {
  const auto m = PowerModel::opteron8380_server();
  EnergyAccount acc(m, 1);
  acc.add_core_time(0, 5.0, 1, false);
  EXPECT_NEAR(acc.halted_s(), 5.0, 1e-12);
  EXPECT_NEAR(acc.core_joules(), m.core_power_w(1, false) * 5.0, 1e-9);
}

TEST(EnergyAccount, ExtrasAndValidation) {
  const auto m = PowerModel::opteron8380_server();
  EnergyAccount acc(m, 1);
  acc.add_extra_joules(2.5);
  EXPECT_NEAR(acc.core_joules(), 2.5, 1e-12);
  EXPECT_THROW(acc.add_core_time(0, -1.0, 0, true), std::invalid_argument);
  EXPECT_THROW(acc.add_core_time(5, 1.0, 0, true), std::out_of_range);
  EXPECT_THROW(acc.add_core_time(0, 1.0, 9, true), std::out_of_range);
  EXPECT_THROW(EnergyAccount(m, 0), std::invalid_argument);
}

TEST(EnergyAccount, LowerFrequencyLowersEnergyForSameTime) {
  const auto m = PowerModel::opteron8380_server();
  EnergyAccount fast(m, 1), slow(m, 1);
  fast.add_core_time(0, 1.0, 0, true);
  slow.add_core_time(0, 1.0, 3, true);
  EXPECT_LT(slow.core_joules(), fast.core_joules());
}

TEST(ModelMeter, IntegratesTraceSegments) {
  const auto m = PowerModel::opteron8380_server();
  dvfs::TraceBackend backend(m.ladder(), 2);
  ModelMeter meter(m, backend);
  ASSERT_TRUE(meter.available());
  meter.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  backend.set_frequency(0, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double joules = meter.stop_joules();
  // Between all-fast and all-slow bounds for the elapsed interval.
  const double elapsed_lo = 0.04;
  const double hi = (m.floor_w() + 2 * m.core_power_w(0, true)) * 1.0;
  const double lo =
      (m.floor_w() + 2 * m.core_power_w(3, true)) * elapsed_lo;
  EXPECT_GT(joules, lo * 0.9);
  EXPECT_LT(joules, hi);
}

TEST(ModelMeter, RejectsMismatchedLadder) {
  const auto m = PowerModel::opteron8380_server();
  dvfs::TraceBackend backend(dvfs::FrequencyLadder({2.0, 1.0}), 2);
  EXPECT_THROW(ModelMeter(m, backend), std::invalid_argument);
}

// ------------------------------------------------------ RAPL (fake tree) --

class RaplFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("eewa_rapl_" + std::to_string(::getpid()));
    fs::create_directories(root_ / "intel-rapl:0");
    fs::create_directories(root_ / "intel-rapl:0:0");  // subdomain: skipped
    fs::create_directories(root_ / "intel-rapl:1");
    write(root_ / "intel-rapl:0" / "energy_uj", "1000000");
    write(root_ / "intel-rapl:0" / "max_energy_range_uj", "262143328850");
    write(root_ / "intel-rapl:0:0" / "energy_uj", "999");
    write(root_ / "intel-rapl:1" / "energy_uj", "2000000");
    write(root_ / "intel-rapl:1" / "max_energy_range_uj", "262143328850");
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  static void write(const fs::path& p, const std::string& v) {
    std::ofstream out(p);
    out << v;
  }

  fs::path root_;
};

TEST_F(RaplFixture, DiscoversPackageDomainsOnly) {
  RaplMeter meter(root_.string());
  EXPECT_TRUE(meter.available());
  EXPECT_EQ(meter.domain_count(), 2u);
}

TEST_F(RaplFixture, MeasuresDeltaAcrossDomains) {
  RaplMeter meter(root_.string());
  meter.start();
  write(root_ / "intel-rapl:0" / "energy_uj", "1500000");
  write(root_ / "intel-rapl:1" / "energy_uj", "2250000");
  EXPECT_NEAR(meter.stop_joules(), 0.75, 1e-9);
}

TEST_F(RaplFixture, HandlesCounterWraparound) {
  RaplMeter meter(root_.string());
  write(root_ / "intel-rapl:0" / "energy_uj", "262143328000");
  write(root_ / "intel-rapl:1" / "energy_uj", "1000000");
  meter.start();
  write(root_ / "intel-rapl:0" / "energy_uj", "500");  // wrapped
  write(root_ / "intel-rapl:1" / "energy_uj", "1000000");
  const double joules = meter.stop_joules();
  EXPECT_NEAR(joules, (262143328850.0 - 262143328000.0 + 500.0) * 1e-6,
              1e-6);
}

TEST(RaplMeter, UnavailableWithoutTree) {
  RaplMeter meter("/nonexistent/powercap");
  EXPECT_FALSE(meter.available());
  meter.start();
  EXPECT_EQ(meter.stop_joules(), 0.0);
}

}  // namespace
}  // namespace eewa::energy
