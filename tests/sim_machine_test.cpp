// Tests for the discrete-event machine itself: pools, frequency
// requests, execution-time model, and conservation properties (every
// task runs once, makespan bounds, energy = ∫P dt bounds).
#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "sim/policies.hpp"
#include "sim/simulate.hpp"
#include "trace/synthetic.hpp"

namespace eewa::sim {
namespace {

SimOptions small_options(std::size_t cores = 4) {
  SimOptions opt;
  opt.cores = cores;
  opt.seed = 7;
  return opt;
}

TEST(Machine, PoolsPushPopSteal) {
  Machine m(small_options());
  m.configure_pools(2);
  m.push_task(0, 0, 11);
  m.push_task(0, 0, 12);
  m.push_task(1, 1, 13);
  EXPECT_EQ(m.group_task_count(0), 2u);
  EXPECT_EQ(m.group_task_count(1), 1u);
  // Local pop is LIFO.
  EXPECT_EQ(m.pop_local(0, 0), std::optional<TaskId>(12));
  EXPECT_EQ(m.group_task_count(0), 1u);
  // Steal takes the oldest from a victim.
  const auto stolen = m.steal(2, 0);
  EXPECT_EQ(stolen, std::optional<TaskId>(11));
  EXPECT_EQ(m.total_steals(), 1u);
  EXPECT_GT(m.total_probes(), 0u);
  // Empty group steals return nothing immediately.
  EXPECT_FALSE(m.steal(2, 0).has_value());
  EXPECT_FALSE(m.pop_local(3, 1).has_value());
}

TEST(Machine, RequestRungValidatesAndCounts) {
  Machine m(small_options());
  EXPECT_EQ(m.rung(0), 0u);
  m.request_rung(0, 3);
  EXPECT_EQ(m.rung(0), 3u);
  EXPECT_EQ(m.total_transitions(), 1u);
  m.request_rung(0, 3);  // no-op
  EXPECT_EQ(m.total_transitions(), 1u);
  EXPECT_THROW(m.request_rung(0, 9), std::out_of_range);
}

TEST(Machine, ExecTimeModel) {
  Machine m(small_options());
  trace::TraceTask cpu{0, 1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(m.exec_time(cpu, 0), 1.0);
  EXPECT_NEAR(m.exec_time(cpu, 3), 2.5 / 0.8, 1e-12);
  // Fully memory-bound work does not scale with frequency.
  trace::TraceTask mem{0, 1.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(m.exec_time(mem, 3), 1.0);
  // Half-memory-bound is in between.
  trace::TraceTask half{0, 1.0, 0.0, 0.5};
  EXPECT_NEAR(m.exec_time(half, 3), 0.5 + 0.5 * 2.5 / 0.8, 1e-12);
}

TEST(Machine, RejectsZeroCoresOrPools) {
  auto opt = small_options(0);
  EXPECT_THROW(Machine m(opt), std::invalid_argument);
  Machine m(small_options());
  EXPECT_THROW(m.configure_pools(0), std::invalid_argument);
}

// ------------------------------------------------ conservation checks --

TEST(Simulate, EveryTaskRunsExactlyOnce) {
  const auto t = trace::balanced(40, 0.01, 3, 1);
  CilkPolicy p;
  const auto res = simulate(t, p, small_options());
  // All work accounted: active core time >= total work (spin included).
  EXPECT_GE(res.time_s, 0.0);
  // The per-batch span must be at least total-work / capacity.
  for (std::size_t b = 0; b < t.batch_count(); ++b) {
    const double lower =
        t.batches[b].total_work_s() / static_cast<double>(4);
    EXPECT_GE(res.batches[b].span_s, lower * 0.999);
  }
}

TEST(Simulate, MakespanAtLeastCriticalPath) {
  // One giant task dominates: makespan >= its execution time.
  trace::TaskTrace t;
  t.name = "crit";
  t.class_names = {"c"};
  t.batches.resize(1);
  t.batches[0].tasks = {{0, 5.0, 0, 0}, {0, 0.1, 0, 0}, {0, 0.1, 0, 0}};
  CilkPolicy p;
  const auto res = simulate(t, p, small_options());
  EXPECT_GE(res.time_s, 5.0);
  EXPECT_LT(res.time_s, 5.5);
}

TEST(Simulate, EnergyBoundedByPowerEnvelope) {
  const auto t = trace::balanced(32, 0.01, 2, 2);
  CilkPolicy p;
  const auto opt = small_options();
  const auto res = simulate(t, p, opt);
  const double hi = opt.power.machine_all_active_w(4, 0) * res.time_s;
  const double lo = opt.power.floor_w() * res.time_s;
  EXPECT_LE(res.energy_j, hi * 1.0001);
  EXPECT_GE(res.energy_j, lo);
  EXPECT_GT(res.cpu_energy_j, 0.0);
  EXPECT_LT(res.cpu_energy_j, res.energy_j);
}

TEST(Simulate, ResidencySumsToCoreTime) {
  const auto t = trace::balanced(32, 0.01, 2, 3);
  CilkPolicy p;
  const auto res = simulate(t, p, small_options());
  double residency = 0.0;
  for (double r : res.rung_residency_s) residency += r;
  // Every core is accounted from batch start to barrier each batch
  // (spin included), so total residency ~= cores × span total.
  double span_total = 0.0;
  for (const auto& b : res.batches) span_total += b.span_s + b.overhead_s;
  EXPECT_NEAR(residency, 4.0 * span_total, 0.05 * residency + 1e-9);
}

TEST(Simulate, StragglerStallTailKeepsResidencyExact) {
  // Cilk-D on 2 cores: the core whose task finishes just before the
  // other's pays its park-at-slowest transition stall (50 µs) and is
  // charged *past* the last completion. The batch barrier is wherever
  // the last core actually stopped; re-charging the straggler's tail
  // from the makespan would double-count it.
  trace::TaskTrace t;
  t.name = "straggler";
  t.class_names = {"c"};
  trace::Batch b;
  b.tasks.push_back({0, 1e-3, 0.0, 0.0, 0.0});
  b.tasks.push_back({0, 0.99e-3, 0.0, 0.0, 0.0});
  t.batches.push_back(b);
  CilkDPolicy p;
  auto opt = small_options(2);
  opt.fixed_adjuster_overhead_s = 0.0;
  const auto res = simulate(t, p, opt);
  double residency = 0.0;
  for (double r : res.rung_residency_s) residency += r;
  EXPECT_NEAR(residency, 2.0 * res.time_s, 1e-9 * residency + 1e-12);
}

TEST(Simulate, MidStallInjectionDoesNotDoubleChargeResidency) {
  // Cilk-D, one core: after finishing the first task the core fails to
  // acquire and pays the 50 µs drop-to-slowest stall; the second task is
  // released inside that stall window, waking the core "in the past".
  // The wake must clamp to the moment the core actually went idle —
  // rewinding re-bills stall time that was already charged and inflates
  // residency.
  trace::TaskTrace t;
  t.name = "inject";
  t.class_names = {"c"};
  trace::Batch b;
  b.tasks.push_back({0, 1e-3, 0.0, 0.0, 0.0});
  b.tasks.push_back({0, 1e-3, 0.0, 0.0, 1.02e-3});  // lands mid-stall
  t.batches.push_back(b);
  CilkDPolicy p;
  auto opt = small_options(1);
  opt.fixed_adjuster_overhead_s = 0.0;
  const auto res = simulate(t, p, opt);
  double residency = 0.0;
  for (double r : res.rung_residency_s) residency += r;
  EXPECT_NEAR(residency, res.time_s, 1e-9 * residency + 1e-12);
}

TEST(Simulate, EmptyBatchesAreHandled) {
  trace::TaskTrace t;
  t.name = "empty";
  t.class_names = {"c"};
  t.batches.resize(2);  // two empty batches
  CilkPolicy p;
  const auto res = simulate(t, p, small_options());
  EXPECT_EQ(res.batches.size(), 2u);
  EXPECT_DOUBLE_EQ(res.batches[0].span_s, 0.0);
}

TEST(Simulate, DeterministicForFixedSeed) {
  const auto t = trace::bimodal(4, 0.2, 28, 0.02, 3, 9);
  CilkPolicy p1, p2;
  const auto a = simulate(t, p1, small_options());
  const auto b = simulate(t, p2, small_options());
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.steals, b.steals);
}

TEST(Simulate, BatchStatsRecorded) {
  const auto t = trace::balanced(32, 0.01, 3, 4);
  CilkPolicy p;
  const auto res = simulate(t, p, small_options());
  ASSERT_EQ(res.batches.size(), 3u);
  for (const auto& b : res.batches) {
    EXPECT_GT(b.span_s, 0.0);
    EXPECT_EQ(b.cores_per_rung.size(), 4u);
    EXPECT_EQ(b.cores_per_rung[0], 4u);  // Cilk keeps everyone at F0
    EXPECT_GT(b.energy_j, 0.0);
  }
}

TEST(Simulate, NamedFactoryWorks) {
  const auto t = trace::balanced(16, 0.01, 2, 5);
  const auto opt = small_options();
  EXPECT_EQ(simulate_named(t, "cilk", opt).policy, "cilk");
  EXPECT_EQ(simulate_named(t, "cilk-d", opt).policy, "cilk-d");
  EXPECT_EQ(simulate_named(t, "eewa", opt).policy, "eewa");
  EXPECT_THROW(simulate_named(t, "nope", opt), std::invalid_argument);
}

TEST(Machine, ParkWakeChargeClockStaysMonotone) {
  // The fleet's park/drain/wake cycle on a bare machine: the charge
  // clock advances through batch, idle, park and wake, never rewinds,
  // and the parked interval is never billed to the cores. This is the
  // pinned regression for the session-level charge clamp — the same
  // never-rewind contract charged_until_ enforces inside a batch.
  Machine m(small_options());
  CilkPolicy p;
  trace::Batch b;
  b.tasks.push_back({0, 1e-3, 0.0, 0.0, 0.0});
  b.tasks.push_back({0, 1e-3, 0.0, 0.0, 0.0});

  const double end1 = m.run_batch(p, b, 0.0);
  EXPECT_TRUE(m.powered());
  EXPECT_DOUBLE_EQ(m.charged_through(), end1);
  EXPECT_EQ(m.queued_tasks(), 0u);

  m.run_idle(end1 + 1e-3);
  EXPECT_DOUBLE_EQ(m.charged_through(), end1 + 1e-3);
  m.run_idle(end1);  // stale idle request: no-op, never rewinds
  EXPECT_DOUBLE_EQ(m.charged_through(), end1 + 1e-3);

  const double park_at = end1 + 2e-3;
  m.park(park_at);  // charges the idle tail, then powers off
  EXPECT_FALSE(m.powered());
  EXPECT_DOUBLE_EQ(m.charged_through(), park_at);
  const double charged_at_park =
      m.account().active_s() + m.account().halted_s();
  EXPECT_NEAR(charged_at_park, 4.0 * park_at, 1e-12);

  // Simulated silicon cannot execute, idle or re-park while off.
  EXPECT_THROW(m.run_idle(park_at + 1e-3), std::logic_error);
  EXPECT_THROW(m.park(park_at + 1e-3), std::logic_error);
  EXPECT_THROW(m.run_batch(p, b, park_at + 1e-3), std::logic_error);
  // Waking in the past would re-bill the pre-park interval.
  EXPECT_THROW(m.wake(park_at - 1e-3), std::logic_error);

  const double wake_at = park_at + 5e-3;
  m.wake(wake_at);
  EXPECT_TRUE(m.powered());
  EXPECT_DOUBLE_EQ(m.charged_through(), wake_at);
  EXPECT_THROW(m.wake(wake_at), std::logic_error);  // already powered
  // The parked interval was not billed to the cores.
  EXPECT_NEAR(m.account().active_s() + m.account().halted_s(),
              charged_at_park, 1e-12);

  // A batch must not start inside the already-charged region...
  EXPECT_THROW(m.run_batch(p, b, park_at), std::logic_error);
  // ...and a clean post-wake batch keeps the core-second identity:
  // every powered second billed exactly once, the parked gap skipped.
  const double end2 = m.run_batch(p, b, wake_at);
  EXPECT_DOUBLE_EQ(m.charged_through(), end2);
  EXPECT_EQ(m.total_completed(), 4u);
  const double powered_s = park_at + (end2 - wake_at);
  EXPECT_NEAR(m.account().active_s() + m.account().halted_s(),
              4.0 * powered_s, 1e-9);
}

TEST(Machine, ParkRefusesToStrandQueuedTasks) {
  Machine m(small_options());
  m.configure_pools(1);
  m.push_task(0, 0, 0);
  EXPECT_EQ(m.queued_tasks(), 1u);
  EXPECT_THROW(m.park(1.0), std::logic_error);
  EXPECT_TRUE(m.powered());  // the refused park left the machine up
  ASSERT_TRUE(m.pop_local(0, 0).has_value());
  m.park(1.0);
  EXPECT_FALSE(m.powered());
}

}  // namespace
}  // namespace eewa::sim
