// Tests for rob-the-weaker-first preference lists (paper Fig. 5): the
// exact order {G_i, G_{i+1}, ..., G_{u-1}, G_{i-1}, ..., G_0} and the
// per-layout table, plus permutation properties over a sweep of u.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/preference_list.hpp"

namespace eewa::core {
namespace {

TEST(PreferenceList, MatchesPaperFigure5Order) {
  // u = 4, core in G_1: {G1, G2, G3, G0}.
  EXPECT_EQ(preference_list(1, 4), (std::vector<std::size_t>{1, 2, 3, 0}));
  // Fastest group robs the weaker ones in order.
  EXPECT_EQ(preference_list(0, 4), (std::vector<std::size_t>{0, 1, 2, 3}));
  // Slowest group: itself, then faster groups nearest-first.
  EXPECT_EQ(preference_list(3, 4), (std::vector<std::size_t>{3, 2, 1, 0}));
}

TEST(PreferenceList, SingleGroup) {
  EXPECT_EQ(preference_list(0, 1), (std::vector<std::size_t>{0}));
}

TEST(PreferenceList, RejectsOutOfRange) {
  EXPECT_THROW(preference_list(4, 4), std::invalid_argument);
  EXPECT_THROW(preference_list(0, 0), std::invalid_argument);
}

class PreferenceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PreferenceSweep, IsPermutationStartingWithSelf) {
  const std::size_t u = GetParam();
  for (std::size_t g = 0; g < u; ++g) {
    const auto order = preference_list(g, u);
    ASSERT_EQ(order.size(), u);
    EXPECT_EQ(order.front(), g);
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < u; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST_P(PreferenceSweep, WeakerGroupsComeBeforeStrongerOnes) {
  const std::size_t u = GetParam();
  for (std::size_t g = 0; g < u; ++g) {
    const auto order = preference_list(g, u);
    // All groups slower than g (index > g) appear before all groups
    // faster than g (index < g).
    std::size_t last_weaker = 0, first_stronger = order.size();
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      if (order[pos] > g) last_weaker = pos;
      if (order[pos] < g && pos < first_stronger) first_stronger = pos;
    }
    if (g + 1 < u && g > 0) {
      EXPECT_LT(last_weaker, first_stronger);
    }
  }
}

TEST_P(PreferenceSweep, StrongerGroupsNearestFirst) {
  const std::size_t u = GetParam();
  for (std::size_t g = 1; g < u; ++g) {
    const auto order = preference_list(g, u);
    // The faster-group suffix is G_{g-1}, ..., G_0 in that order.
    std::vector<std::size_t> suffix(order.end() - static_cast<long>(g),
                                    order.end());
    for (std::size_t i = 0; i < g; ++i) {
      EXPECT_EQ(suffix[i], g - 1 - i);
    }
  }
}

TEST_P(PreferenceSweep, MatchesConstructedPaperOrderExactly) {
  // The full contract in one shot: for every (own, u) the list is
  // exactly {G_g, G_{g+1}, ..., G_{u-1}, G_{g-1}, ..., G_0}.
  const std::size_t u = GetParam();
  for (std::size_t g = 0; g < u; ++g) {
    std::vector<std::size_t> expect;
    for (std::size_t j = g; j < u; ++j) expect.push_back(j);
    for (std::size_t j = g; j-- > 0;) expect.push_back(j);
    EXPECT_EQ(preference_list(g, u), expect) << "g=" << g << " u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(U, PreferenceSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST(PreferenceTable, BuildsOneListPerGroup) {
  dvfs::CGroupLayout layout({dvfs::CGroup{.freq_index = 0, .cores = {0, 1}},
                             dvfs::CGroup{.freq_index = 2, .cores = {2, 3}},
                             dvfs::CGroup{.freq_index = 3, .cores = {4}}},
                            {0, 1, 2}, 5);
  const PreferenceTable table(layout);
  EXPECT_EQ(table.group_count(), 3u);
  EXPECT_EQ(table.for_group(0), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(table.for_group(1), (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(table.for_group(2), (std::vector<std::size_t>{2, 1, 0}));
}

}  // namespace
}  // namespace eewa::core
