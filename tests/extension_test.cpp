// Tests for the extensions beyond the paper's core design:
//  - memory-aware CC planning (the paper's §IV-D future work),
//  - the alpha-from-CMI estimate and PMC plumbing,
//  - trace CSV round trip,
//  - the idle-halt (thrifty-barrier-style) simulator switch,
//  - feasibility-filtered stealing (slow thieves must not blow up the
//    batch critical path).
#include <gtest/gtest.h>

#include "core/adjuster.hpp"
#include "core/classifier.hpp"
#include "core/eewa_controller.hpp"
#include "core/profile_io.hpp"
#include "runtime/pmc.hpp"
#include "runtime/runtime.hpp"
#include "sim/simulate.hpp"
#include "trace/synthetic.hpp"
#include "workloads/suite.hpp"

namespace eewa {
namespace {

const dvfs::FrequencyLadder kLadder = dvfs::FrequencyLadder::opteron8380();

TEST(MemoryAwareCC, EffectiveSlowdownScalesColumns) {
  std::vector<core::ClassProfile> classes = {
      {0, "mem", 10, 1.0, 1.2, /*mean_alpha=*/0.75}};
  const auto cpu = core::CCTable::build(classes, kLadder, 5.0, false);
  const auto mem = core::CCTable::build(classes, kLadder, 5.0, true);
  // Top row identical (no slowdown at F0).
  EXPECT_NEAR(cpu.at(0, 0), mem.at(0, 0), 1e-12);
  // At the bottom rung the CPU-bound model demands slowdown x cores; the
  // memory-aware model only 0.75 + 0.25 * slowdown.
  const double slow = kLadder.slowdown(3);
  EXPECT_NEAR(cpu.at(3, 0) / cpu.at(0, 0), slow, 1e-12);
  EXPECT_NEAR(mem.at(3, 0) / mem.at(0, 0), 0.75 + 0.25 * slow, 1e-12);
  EXPECT_LT(mem.at(3, 0), cpu.at(3, 0));
}

TEST(MemoryAwareCC, FeasibilityUsesEffectiveSlowdown) {
  // A task with max workload 0.6·T is infeasible below F0 in the
  // CPU-bound model (0.6·3.125 = 1.875 > T) but fine at the bottom rung
  // when 80% memory-stalled (0.6·(0.8 + 0.2·3.125) = 0.855 < T).
  std::vector<core::ClassProfile> classes = {
      {0, "mem", 4, 0.6, 0.6, /*mean_alpha=*/0.8}};
  const auto cpu = core::CCTable::build(classes, kLadder, 1.0, false);
  const auto mem = core::CCTable::build(classes, kLadder, 1.0, true);
  EXPECT_FALSE(cpu.rung_feasible(3, 0));
  EXPECT_TRUE(mem.rung_feasible(3, 0));
}

TEST(AlphaEstimate, MonotoneAndClamped) {
  EXPECT_DOUBLE_EQ(core::estimate_alpha_from_cmi(0.0), 0.0);
  EXPECT_DOUBLE_EQ(core::estimate_alpha_from_cmi(-1.0), 0.0);
  EXPECT_GT(core::estimate_alpha_from_cmi(0.02),
            core::estimate_alpha_from_cmi(0.005));
  EXPECT_DOUBLE_EQ(core::estimate_alpha_from_cmi(10.0), 1.0);
}

TEST(MemoryAwareController, PlansInsteadOfFallingBack) {
  core::ControllerOptions opt;
  opt.adjuster.memory_aware = true;
  core::EewaController ctrl(kLadder, 16, opt);
  const auto f = ctrl.class_id("mem_task");
  ctrl.begin_batch();
  // Heavily memory-bound tasks with lots of idle machine headroom.
  for (int i = 0; i < 16; ++i) {
    ctrl.record_task(f, 0.25, 0, /*cmi=*/0.1, /*alpha=*/0.8);
  }
  ctrl.end_batch(2.0);
  EXPECT_FALSE(ctrl.memory_bound_mode());
  ASSERT_TRUE(ctrl.plan().planned);
  // The memory-aware planner can push them to the bottom rung.
  const auto per_rung = ctrl.plan().layout.cores_per_rung(kLadder.size());
  EXPECT_LT(per_rung[0], 16u);
}

TEST(MemoryAwareController, RecordsAlphaCorrectedWorkload) {
  core::EewaController ctrl(kLadder, 4);
  const auto f = ctrl.class_id("f");
  ctrl.begin_batch();
  // 80% memory-stalled task measured on the bottom rung: exec stretches
  // only by 0.8 + 0.2·3.125 = 1.425, not 3.125.
  ctrl.record_task(f, 1.425, 3, 0.1, 0.8);
  EXPECT_NEAR(ctrl.registry().mean_workload(f), 1.0, 1e-9);
  EXPECT_NEAR(ctrl.registry().mean_alpha(f), 0.8, 1e-12);
}

TEST(MemoryAwareSim, BeatsGatedFallbackOnMemoryBoundApp) {
  // A memory-bound batch application: vanilla EEWA trips the §IV-D gate
  // (plain stealing at F0); the memory-aware extension downclocks and
  // saves energy at nearly the same makespan.
  trace::SyntheticSpec spec;
  spec.classes = {{"mem_heavy", 6, 0.08, 0.1, /*cmi=*/0.08, /*alpha=*/0.7},
                  {"mem_light", 40, 0.008, 0.1, 0.08, 0.7}};
  spec.batches = 20;
  spec.seed = 5;
  const auto t = trace::generate(spec);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 9;

  sim::EewaPolicy gated(t.class_names);
  const auto rg = sim::simulate(t, gated, opt);
  EXPECT_TRUE(gated.controller().memory_bound_mode());

  core::ControllerOptions copts;
  copts.adjuster.memory_aware = true;
  sim::EewaPolicy aware(t.class_names, copts);
  const auto ra = sim::simulate(t, aware, opt);
  EXPECT_FALSE(aware.controller().memory_bound_mode());

  EXPECT_LT(ra.energy_j, rg.energy_j);
  EXPECT_LT(ra.time_s / rg.time_s, 1.10);
}

TEST(PerfCounters, GracefulWhenUnavailable) {
  rt::PerfCounters pmc;
  // Containers usually forbid perf_event_open; both paths must be safe.
  pmc.start();
  const auto sample = pmc.stop();
  if (!pmc.available()) {
    EXPECT_EQ(sample.instructions, 0u);
    EXPECT_EQ(sample.cache_misses, 0u);
    EXPECT_DOUBLE_EQ(sample.cmi(), 0.0);
  } else {
    // If counters work, a busy loop must retire instructions.
    pmc.start();
    volatile std::uint64_t x = 0;
    for (int i = 0; i < 100000; ++i) x = x + static_cast<std::uint64_t>(i);
    (void)x;
    EXPECT_GT(pmc.stop().instructions, 0u);
  }
}

TEST(TraceCsv, RoundTripsThroughImport) {
  const auto original = trace::bimodal(3, 0.5, 10, 0.05, 4, 77);
  const auto imported =
      trace::TaskTrace::from_csv(original.to_csv(), original.name);
  ASSERT_EQ(imported.batch_count(), original.batch_count());
  ASSERT_EQ(imported.class_names.size(), original.class_names.size());
  EXPECT_EQ(imported.task_count(), original.task_count());
  for (std::size_t b = 0; b < original.batches.size(); ++b) {
    for (std::size_t i = 0; i < original.batches[b].tasks.size(); ++i) {
      const auto& x = original.batches[b].tasks[i];
      const auto& y = imported.batches[b].tasks[i];
      EXPECT_EQ(original.class_names[x.class_id],
                imported.class_names[y.class_id]);
      EXPECT_NEAR(x.work_s, y.work_s, 1e-6 * x.work_s + 1e-12);
    }
  }
}

TEST(TraceCsv, RejectsMalformedInput) {
  EXPECT_THROW(trace::TaskTrace::from_csv("nonsense"),
               std::invalid_argument);
  EXPECT_THROW(trace::TaskTrace::from_csv(
                   "batch,class,work_s,cmi,mem_alpha\n0,c,oops,0,0\n"),
               std::invalid_argument);
  EXPECT_THROW(trace::TaskTrace::from_csv(
                   "batch,class,work_s,cmi,mem_alpha\n0,c,1.0\n"),
               std::invalid_argument);
}

TEST(ProfileIo, RoundTripsAndSorts) {
  std::vector<core::ClassProfile> profile = {
      {2, "light", 30, 0.1, 0.2, 0.0},
      {0, "heavy", 5, 2.5, 3.0, 0.4},
  };
  const auto csv = core::profile_to_csv(profile);
  const auto back = core::profile_from_csv(csv);
  ASSERT_EQ(back.size(), 2u);
  // Returned in adjuster order: heaviest first.
  EXPECT_EQ(back[0].name, "heavy");
  EXPECT_EQ(back[0].class_id, 0u);
  EXPECT_EQ(back[0].count, 5u);
  EXPECT_NEAR(back[0].mean_workload, 2.5, 1e-9);
  EXPECT_NEAR(back[0].max_workload, 3.0, 1e-9);
  EXPECT_NEAR(back[0].mean_alpha, 0.4, 1e-9);
  EXPECT_EQ(back[1].name, "light");
}

TEST(ProfileIo, RejectsMalformedInput) {
  EXPECT_THROW(core::profile_from_csv("junk"), std::invalid_argument);
  EXPECT_THROW(core::profile_from_csv(
                   "class_id,name,count,mean_workload,max_workload,"
                   "mean_alpha\n0,c,notanumber,1,1,0\n"),
               std::invalid_argument);
}

TEST(ProfileIo, SavedProfileDrivesTheAdjusterOffline) {
  // The §IV-D offline-profiling path: profile once, plan later without
  // re-running the measurement batch.
  std::vector<core::ClassProfile> profile = {
      {0, "heavy", 8, 0.5, 0.55, 0.0},
      {1, "light", 40, 0.05, 0.06, 0.0},
  };
  const auto restored = core::profile_from_csv(core::profile_to_csv(profile));
  core::Adjuster adjuster(kLadder, 16);
  const auto out = adjuster.adjust(restored, 2, /*ideal_time_s=*/0.6);
  ASSERT_TRUE(out.plan.planned);
  const auto per_rung = out.plan.layout.cores_per_rung(kLadder.size());
  EXPECT_LT(per_rung[0], 16u);  // the offline plan downclocks something
}

TEST(IdleHalt, CutsTailEnergyWithoutChangingTime) {
  const auto t = trace::bimodal(4, 0.1, 30, 0.005, 6, 3);
  sim::SimOptions spin;
  spin.cores = 16;
  spin.seed = 4;
  sim::SimOptions halt = spin;
  halt.idle_halt = true;
  sim::CilkPolicy p1, p2;
  const auto rs = sim::simulate(t, p1, spin);
  const auto rh = sim::simulate(t, p2, halt);
  EXPECT_DOUBLE_EQ(rs.time_s, rh.time_s);
  EXPECT_LT(rh.energy_j, rs.energy_j);
}

TEST(StaggeredRelease, AllTasksRunAndMakespanCoversWindow) {
  trace::SyntheticSpec spec;
  spec.classes = {{"t", 40, 0.002, 0.2, 0, 0}};
  spec.batches = 2;
  spec.seed = 6;
  spec.release_window_s = 0.05;  // far longer than the work itself
  const auto t = trace::generate(spec);
  sim::SimOptions opt;
  opt.cores = 4;
  opt.seed = 7;
  sim::CilkPolicy cilk;
  const auto res = sim::simulate(t, cilk, opt);
  // Every batch must wait for its last spawn.
  for (std::size_t b = 0; b < t.batches.size(); ++b) {
    double last_release = 0.0;
    for (const auto& task : t.batches[b].tasks) {
      last_release = std::max(last_release, task.release_s);
    }
    EXPECT_GE(res.batches[b].span_s, last_release);
  }
}

TEST(StaggeredRelease, CilkDBouncesAndRestores) {
  // With long gaps between spawns, Cilk-D cores park, then must ramp
  // back to F0 when the next task appears: transitions accumulate well
  // beyond the one-drop-per-core-per-batch of the all-at-once model.
  trace::SyntheticSpec spec;
  spec.classes = {{"t", 10, 0.001, 0.1, 0, 0}};
  spec.batches = 1;
  spec.seed = 8;
  spec.release_window_s = 0.1;  // sparse arrivals
  const auto t = trace::generate(spec);
  sim::SimOptions opt;
  opt.cores = 4;
  opt.seed = 9;
  sim::CilkDPolicy cilkd;
  const auto res = sim::simulate(t, cilkd, opt);
  // Drops + restores: at least one restore implies a mid-batch ramp-up.
  EXPECT_GT(res.transitions, 4u);
  // All residency not at F0 alone: some time was spent parked.
  EXPECT_GT(res.rung_residency_s[3], 0.0);
  EXPECT_GT(res.rung_residency_s[0], 0.0);
}

TEST(StaggeredRelease, EewaHandlesMidBatchSpawns) {
  trace::SyntheticSpec spec;
  spec.classes = {{"heavy", 4, 0.02, 0.1, 0, 0},
                  {"light", 24, 0.002, 0.1, 0, 0}};
  spec.batches = 4;
  spec.seed = 10;
  spec.release_window_s = 0.01;
  const auto t = trace::generate(spec);
  sim::SimOptions opt;
  opt.cores = 8;
  opt.seed = 11;
  sim::EewaPolicy eewa(t.class_names);
  EXPECT_NO_THROW(sim::simulate(t, eewa, opt));
}

TEST(SocketTopology, RemoteProbesCostMore) {
  // Same trace, same seed; remote-socket probes at 10x cost must not
  // change the schedule's structure, only stretch probe time slightly.
  const auto t = trace::bimodal(4, 0.05, 28, 0.004, 4, 11);
  sim::SimOptions flat;
  flat.cores = 16;
  flat.seed = 2;
  sim::SimOptions numa = flat;
  numa.cores_per_socket = 4;
  numa.remote_steal_multiplier = 10.0;
  sim::CilkPolicy p1, p2;
  const auto rf = sim::simulate(t, p1, flat);
  const auto rn = sim::simulate(t, p2, numa);
  EXPECT_GE(rn.time_s, rf.time_s);          // probes got pricier
  EXPECT_LT(rn.time_s, rf.time_s * 1.10);   // but stay second-order
}

TEST(SocketTopology, SocketOfMapsCoresToPackages) {
  sim::SimOptions opt;
  opt.cores = 16;
  opt.cores_per_socket = 4;
  sim::Machine m(opt);
  EXPECT_EQ(m.socket_of(0), 0u);
  EXPECT_EQ(m.socket_of(3), 0u);
  EXPECT_EQ(m.socket_of(4), 1u);
  EXPECT_EQ(m.socket_of(15), 3u);
  sim::SimOptions flat;
  flat.cores = 16;
  sim::Machine m2(flat);
  EXPECT_EQ(m2.socket_of(15), 0u);  // topology disabled
}

TEST(RollingMinIdealTime, RatchetsDownNeverUp) {
  core::ControllerOptions opt;
  opt.ideal_time = core::IdealTimeMode::kRollingMin;
  core::EewaController ctrl(kLadder, 8, opt);
  const auto f = ctrl.class_id("f");
  auto batch = [&](double makespan) {
    ctrl.begin_batch();
    for (int i = 0; i < 8; ++i) ctrl.record_task(f, 0.05, 0);
    ctrl.end_batch(makespan);
  };
  batch(1.0);  // unlucky measurement batch
  EXPECT_DOUBLE_EQ(ctrl.ideal_time_s(), 1.0);
  batch(0.6);  // faster batch proves the tighter target
  EXPECT_DOUBLE_EQ(ctrl.ideal_time_s(), 0.6);
  batch(2.0);  // a slow batch never relaxes it
  EXPECT_DOUBLE_EQ(ctrl.ideal_time_s(), 0.6);
}

TEST(PaperIdealTime, StaysAtFirstBatch) {
  core::EewaController ctrl(kLadder, 8);  // default kFirstBatch
  const auto f = ctrl.class_id("f");
  for (double makespan : {1.0, 0.5, 0.2}) {
    ctrl.begin_batch();
    for (int i = 0; i < 8; ++i) ctrl.record_task(f, 0.05, 0);
    ctrl.end_batch(makespan);
  }
  EXPECT_DOUBLE_EQ(ctrl.ideal_time_s(), 1.0);
}

TEST(TraceRecording, RuntimeProducesReplayableTrace) {
  rt::RuntimeOptions opt;
  opt.workers = 2;
  opt.kind = rt::SchedulerKind::kCilk;
  opt.record_trace = true;
  rt::Runtime runtime(opt);
  for (int b = 0; b < 2; ++b) {
    std::vector<rt::TaskDesc> tasks;
    for (int i = 0; i < 6; ++i) {
      tasks.push_back({"work", [] {
                         volatile int x = 0;
                         for (int k = 0; k < 50000; ++k) x = x + k;
                         (void)x;
                       }});
    }
    runtime.run_batch(std::move(tasks));
  }
  const auto& rec = runtime.recorded_trace();
  ASSERT_EQ(rec.batch_count(), 2u);
  EXPECT_EQ(rec.batches[0].tasks.size(), 6u);
  EXPECT_EQ(rec.class_names.size(), 1u);
  EXPECT_NO_THROW(rec.validate());
  // And it replays through the simulator.
  sim::SimOptions sopt;
  sopt.cores = 4;
  sim::EewaPolicy eewa(rec.class_names);
  EXPECT_NO_THROW(sim::simulate(rec, eewa, sopt));
}

TEST(TraceRecording, DisabledByDefault) {
  rt::RuntimeOptions opt;
  opt.workers = 2;
  rt::Runtime runtime(opt);
  std::vector<rt::TaskDesc> tasks;
  tasks.push_back(rt::TaskDesc{"t", [] {}});
  runtime.run_batch(std::move(tasks));
  EXPECT_EQ(runtime.recorded_trace().batch_count(), 0u);
}

TEST(FilteredStealing, ParkedCoresDoNotStretchCriticalPath) {
  // The DMC-at-12-cores regression: a mostly-F0 plan with one parked
  // core; without the feasibility filter the parked core occasionally
  // grabs a coarse block and stretches the batch by ~2.5x.
  const auto t = wl::build_trace(wl::find_benchmark("DMC"),
                                 wl::reference_calibration(), 12, 2024);
  sim::SimOptions opt;
  opt.cores = 12;
  opt.seed = 42;
  sim::EewaPolicy eewa(t.class_names);
  const auto re = sim::simulate(t, eewa, opt);
  sim::CilkPolicy cilk;
  const auto rc = sim::simulate(t, cilk, opt);
  for (std::size_t b = 1; b < re.batches.size(); ++b) {
    EXPECT_LT(re.batches[b].span_s, 2.0 * rc.batches[b].span_s)
        << "batch " << b;
  }
}

}  // namespace
}  // namespace eewa
