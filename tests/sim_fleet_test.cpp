// Fleet-level differential tests: bitwise determinism of FleetReport,
// a pinned-seed golden run, the single-machine fleet vs bare
// sim::Machine differential, consolidation properties (parking never
// strands queued tasks), and the energy ordering the placement tier
// exists for (pack-and-park beats round-robin at low load).
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/fleet.hpp"
#include "sim/simulate.hpp"
#include "trace/arrivals.hpp"
#include "util/thread_pool.hpp"

namespace eewa::sim {
namespace {

trace::ArrivalSpec small_arrivals(std::size_t total_cores) {
  trace::ArrivalSpec arr;
  arr.name = "fleet_test";
  arr.seed = 2024;
  arr.cores = total_cores;
  arr.duration_s = 0.06;
  arr.load = 0.8;
  trace::ArrivalClassSpec light{"light", 1.0, 60e-6, 0.3, 0.0, 0.0, 1};
  trace::ArrivalClassSpec heavy{"heavy", 0.3, 200e-6, 0.2, 0.01, 0.1, 1};
  arr.classes = {light, heavy};
  return arr;
}

FleetOptions small_fleet(std::size_t machines = 4, std::size_t cores = 4) {
  FleetOptions o;
  o.machines = machines;
  o.machine.cores = cores;
  o.machine.seed = 99;
  o.epoch_s = 0.01;
  return o;
}

TEST(Fleet, DeterministicReports) {
  const auto opts = small_fleet();
  const auto arr = small_arrivals(16);
  const auto a = Fleet(opts, arr).run();
  const auto b = Fleet(opts, arr).run();
  EXPECT_TRUE(a == b) << "same seed must give a bitwise-identical report";
  EXPECT_GT(a.offered, 0u);
  EXPECT_EQ(a.in_flight, 0u);
  EXPECT_EQ(a.routed, a.completed);
  EXPECT_EQ(a.shed, 0u);

  // A different arrival seed must actually change the run.
  auto arr2 = arr;
  arr2.seed = 2025;
  const auto c = Fleet(opts, arr2).run();
  EXPECT_FALSE(a == c);
}

// Pinned-seed golden regression: integer ledgers exactly, energies to
// double-print precision. If a refactor changes any of these, it
// changed fleet behavior — re-pin deliberately or fix the regression.
TEST(Fleet, GoldenPinnedSeed) {
  auto opts = small_fleet();
  opts.placement = "pack";
  const auto arr = small_arrivals(16);
  const auto r = Fleet(opts, arr).run();
  EXPECT_EQ(r.epochs, 6u);
  EXPECT_EQ(r.offered, 8290u);
  EXPECT_EQ(r.routed, 8290u);
  EXPECT_EQ(r.completed, 8290u);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.parks, 1u);
  EXPECT_EQ(r.wakes, 1u);
  EXPECT_NEAR(r.horizon_s, 0.096119446201840528, 1e-15);
  EXPECT_NEAR(r.energy_j, 78.73480106426436, 1e-9);
}

TEST(Fleet, SingleMachineMatchesBareSimulate) {
  // One machine, one epoch spanning the whole stream, consolidation
  // out of the way: the fleet must reduce to exactly one run_batch on
  // the open-loop trace, so the per-machine report matches a bare
  // simulate() bit for bit.
  FleetOptions opts = small_fleet(1, 4);
  opts.epoch_s = 0.06;  // == duration: a single epoch
  opts.park_after_epochs = 100;
  auto arr = small_arrivals(4);
  arr.load = 1.5;  // backlog at stream end => the drain outlives the epoch

  const auto rep = Fleet(opts, arr).run();
  ASSERT_EQ(rep.machines, 1u);
  ASSERT_EQ(rep.epochs, 1u);
  const auto& m = rep.per_machine[0];
  ASSERT_GT(rep.horizon_s, opts.epoch_s)
      << "premise: the drain must run past the epoch, else the fleet "
         "charges an idle tail the bare run does not have";

  const auto arrivals = trace::generate_arrivals(arr);
  const auto tr = trace::arrivals_to_trace(arr, arrivals);
  const auto bare =
      simulate_named(tr, opts.policy, Fleet::machine_options(opts, 0));

  EXPECT_EQ(m.routed, arrivals.size());
  EXPECT_EQ(m.completed, arrivals.size());
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.parks, 0u);
  EXPECT_EQ(m.wakes, 0u);
  EXPECT_DOUBLE_EQ(rep.horizon_s, bare.time_s);
  EXPECT_DOUBLE_EQ(m.core_energy_j, bare.cpu_energy_j);
  EXPECT_EQ(m.steals, bare.steals);
  EXPECT_EQ(m.probes, bare.probes);
  EXPECT_EQ(m.dvfs_transitions, bare.transitions);
  // Whole-machine energy: the fleet bills floor power over its powered
  // span, which here is the same wall time finish() used.
  EXPECT_DOUBLE_EQ(m.energy_j(), bare.energy_j);
}

TEST(Fleet, ConsolidationParksIdleMachinesWithoutStranding) {
  // Burst-then-idle: all arrivals land in the first half of the run,
  // then silence. Machines must finish everything they were routed
  // (parking never strands queued tasks), then park and deepen.
  FleetOptions opts = small_fleet(4, 4);
  opts.park_after_epochs = 1;
  opts.deepen_after_epochs = 1;
  auto arr = small_arrivals(16);
  arr.duration_s = 0.1;
  arr.kind = trace::ArrivalKind::kBursty;
  arr.burst_factor = 2.0;
  arr.burst_period_s = arr.duration_s;  // one on-phase, then nothing

  const auto r = Fleet(opts, arr).run();
  EXPECT_GT(r.offered, 0u);
  EXPECT_EQ(r.in_flight, 0u);
  for (std::size_t i = 0; i < r.per_machine.size(); ++i) {
    const auto& m = r.per_machine[i];
    EXPECT_EQ(m.routed, m.completed) << "machine " << i;
    if (m.routed > 0) {
      EXPECT_GE(m.parks, 1u) << "machine " << i << " never parked";
      EXPECT_GT(m.final_state, 0u)
          << "machine " << i << " should end parked";
      // With deepen_after_epochs == 1 and a long idle tail, the
      // machine must have sunk below the shallowest state.
      EXPECT_GT(m.final_state, 1u)
          << "machine " << i << " never deepened";
    }
  }
  EXPECT_GT(r.parked_machine_s, 0.0);
}

TEST(Fleet, ZeroArrivalsParksEverything) {
  FleetOptions opts = small_fleet(3, 2);
  auto arr = small_arrivals(6);
  arr.load = 0.0;  // empty stream — a legal fleet that only sleeps

  const auto r = Fleet(opts, arr).run();
  EXPECT_EQ(r.offered, 0u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.parks, 3u);
  EXPECT_EQ(r.wakes, 0u);
  for (const auto& m : r.per_machine) {
    EXPECT_EQ(m.batches, 0u);
    EXPECT_GT(m.final_state, 0u);
    EXPECT_LT(m.powered_s, r.horizon_s);
  }
  EXPECT_GT(r.energy_j, 0.0);  // floor + S-state draw, no core work
}

TEST(Fleet, AllOffColdStartStaysOff) {
  FleetOptions opts = small_fleet(3, 2);
  opts.initial_state = opts.ladder.size();  // deepest state at t = 0
  auto arr = small_arrivals(6);
  arr.load = 0.0;

  const auto r = Fleet(opts, arr).run();
  EXPECT_EQ(r.wakes, 0u);
  EXPECT_EQ(r.parks, 3u);  // the cold start counts in the ledger
  for (const auto& m : r.per_machine) {
    EXPECT_DOUBLE_EQ(m.powered_s, 0.0);
    EXPECT_DOUBLE_EQ(m.floor_energy_j, 0.0);
    EXPECT_DOUBLE_EQ(m.charged_core_s, 0.0);
    EXPECT_EQ(m.final_state, opts.ladder.size());
  }
}

TEST(Fleet, AllOffColdStartWakesOnDemand) {
  FleetOptions opts = small_fleet(2, 4);
  opts.initial_state = 2;  // cold but not bottom-of-ladder
  const auto arr = small_arrivals(8);

  const auto r = Fleet(opts, arr).run();
  EXPECT_GT(r.offered, 0u);
  EXPECT_EQ(r.routed, r.completed);
  EXPECT_GT(r.wakes, 0u) << "someone must have woken to serve traffic";
  for (const auto& m : r.per_machine) {
    if (m.completed > 0) {
      EXPECT_GT(m.powered_s, 0.0);
      EXPECT_GT(m.wake_stall_s, 0.0);
    }
  }
}

TEST(Fleet, ValidatesOptions) {
  const auto arr = small_arrivals(8);
  {
    auto o = small_fleet();
    o.machines = 0;
    EXPECT_THROW(Fleet(o, arr), std::invalid_argument);
  }
  {
    auto o = small_fleet();
    o.ladder = {{"a", 50.0, 1e-3}, {"b", 60.0, 2e-3}};  // power rises
    EXPECT_THROW(Fleet(o, arr), std::invalid_argument);
  }
  {
    auto o = small_fleet();
    o.ladder = {{"a", 50.0, 2e-3}, {"b", 40.0, 1e-3}};  // latency falls
    EXPECT_THROW(Fleet(o, arr), std::invalid_argument);
  }
  {
    auto o = small_fleet();
    o.policy = "no-such-policy";
    EXPECT_THROW(Fleet(o, arr), std::invalid_argument);
  }
  {
    auto o = small_fleet();
    o.placement = "no-such-placement";
    EXPECT_THROW(Fleet(o, arr), std::invalid_argument);
  }
  {
    auto o = small_fleet();
    o.initial_state = o.ladder.size() + 1;
    EXPECT_THROW(Fleet(o, arr), std::invalid_argument);
  }
}

TEST(Fleet, ArrivalStreamMatchesGenerate) {
  // The streaming generator must yield the identical sequence the
  // vector generator does — the fleet and the service mode see the
  // same traffic for the same spec.
  const auto arr = small_arrivals(16);
  const auto all = trace::generate_arrivals(arr);
  trace::ArrivalStream stream(arr);
  std::size_t i = 0;
  while (auto a = stream.next()) {
    ASSERT_LT(i, all.size());
    EXPECT_DOUBLE_EQ(a->time_s, all[i].time_s);
    EXPECT_EQ(a->task.class_id, all[i].task.class_id);
    EXPECT_DOUBLE_EQ(a->task.work_s, all[i].task.work_s);
    ++i;
  }
  EXPECT_EQ(i, all.size());
}

// The parallel-engine contract: every FleetOptions::threads value
// yields the byte-identical FleetReport the serial engine produces.
// Covers the degenerate shapes where the parallel path could plausibly
// diverge — one machine (no pool at all), an all-OFF cold start (every
// first batch wakes a sleeper), and a zero-arrival stream (pure
// consolidation, no batches) — at 2 threads, hardware concurrency, and
// more threads than machines.
TEST(Fleet, ParallelMatchesSerialBitwise) {
  struct Shape {
    const char* name;
    FleetOptions opts;
    trace::ArrivalSpec arr;
  };
  std::vector<Shape> shapes;
  {
    Shape s{"baseline", small_fleet(4, 4), small_arrivals(16)};
    shapes.push_back(s);
  }
  {
    Shape s{"pack placement", small_fleet(8, 4), small_arrivals(32)};
    s.opts.placement = "pack";
    s.opts.park_after_epochs = 1;
    s.arr.load = 0.15;
    shapes.push_back(s);
  }
  {
    Shape s{"one machine", small_fleet(1, 4), small_arrivals(4)};
    shapes.push_back(s);
  }
  {
    Shape s{"all-OFF cold start", small_fleet(3, 2), small_arrivals(6)};
    s.opts.initial_state = s.opts.ladder.size();
    shapes.push_back(s);
  }
  {
    Shape s{"zero arrivals", small_fleet(3, 2), small_arrivals(6)};
    s.arr.load = 0.0;
    shapes.push_back(s);
  }
  {
    Shape s{"shedding overload", small_fleet(4, 2), small_arrivals(8)};
    s.opts.max_backlog_s = 0.005;
    s.arr.load = 3.0;
    shapes.push_back(s);
  }

  for (auto& shape : shapes) {
    shape.opts.threads = 1;
    const auto serial = Fleet(shape.opts, shape.arr).run();
    for (const std::size_t threads :
         {std::size_t{2}, std::size_t{0},
          shape.opts.machines + 5}) {
      auto opts = shape.opts;
      opts.threads = threads;
      const auto parallel = Fleet(opts, shape.arr).run();
      EXPECT_TRUE(parallel == serial)
          << shape.name << " with threads=" << threads
          << " diverged from the serial engine";
    }
  }
}

TEST(Fleet, ParallelGoldenPinnedSeed) {
  // The pinned golden must hold on the parallel engine too — same
  // ledgers, same doubles.
  auto opts = small_fleet();
  opts.placement = "pack";
  opts.threads = 3;
  const auto arr = small_arrivals(16);
  const auto r = Fleet(opts, arr).run();
  EXPECT_EQ(r.epochs, 6u);
  EXPECT_EQ(r.offered, 8290u);
  EXPECT_EQ(r.completed, 8290u);
  EXPECT_EQ(r.parks, 1u);
  EXPECT_EQ(r.wakes, 1u);
  EXPECT_NEAR(r.horizon_s, 0.096119446201840528, 1e-15);
  EXPECT_NEAR(r.energy_j, 78.73480106426436, 1e-9);
}

TEST(Fleet, ValidatesThreadCount) {
  const auto arr = small_arrivals(8);
  {
    auto o = small_fleet();
    o.threads = util::ThreadPool::kMaxThreads + 1;
    EXPECT_THROW(Fleet(o, arr), std::invalid_argument);
  }
  {
    auto o = small_fleet();
    o.threads = util::ThreadPool::kMaxThreads;  // absurd but legal
    Fleet f(o, arr);  // must not throw
  }
}

TEST(Fleet, PackAndParkBeatsRoundRobinOnEnergy) {
  // The reason the placement tier exists: at low load, packing the
  // working set onto few machines and parking the rest must cost less
  // than spreading the same work over every machine.
  FleetOptions opts = small_fleet(8, 4);
  opts.park_after_epochs = 1;
  auto arr = small_arrivals(32);
  arr.duration_s = 0.1;
  arr.load = 0.15;

  auto pack = opts;
  pack.placement = "pack";
  auto rr = opts;
  rr.placement = "round-robin";
  const auto rp = Fleet(pack, arr).run();
  const auto rq = Fleet(rr, arr).run();
  ASSERT_EQ(rp.offered, rq.offered);
  EXPECT_EQ(rp.completed, rp.routed);
  EXPECT_EQ(rq.completed, rq.routed);
  EXPECT_LT(rp.energy_j, rq.energy_j);
  EXPECT_GT(rp.parked_machine_s, rq.parked_machine_s);
}

}  // namespace
}  // namespace eewa::sim
