// Parameterized conservation sweeps: every scheduling policy, across
// machine sizes, trace shapes and seeds, must satisfy the simulator's
// physical invariants — all work executed, makespan above the
// capacity/critical-path lower bounds, energy inside the power
// envelope, and residency accounting that adds up.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sim/simulate.hpp"
#include "trace/synthetic.hpp"

namespace eewa::sim {
namespace {

struct SweepCase {
  const char* policy;
  const char* shape;
  std::size_t cores;
  std::uint64_t seed;
};

trace::TaskTrace make_trace(const SweepCase& sc) {
  const std::string shape = sc.shape;
  if (shape == "balanced") {
    return trace::balanced(48, 0.004, 4, sc.seed);
  }
  if (shape == "bimodal") {
    return trace::bimodal(4, 0.06, 36, 0.003, 4, sc.seed);
  }
  if (shape == "geometric") {
    return trace::geometric_classes(4, 10, 0.03, 8.0, 4, sc.seed);
  }
  // staggered: tasks spawn over a window
  trace::SyntheticSpec spec;
  spec.classes = {{"a", 6, 0.02, 0.2, 0, 0}, {"b", 30, 0.002, 0.2, 0, 0}};
  spec.batches = 4;
  spec.seed = sc.seed;
  spec.release_window_s = 0.01;
  return trace::generate(spec);
}

std::unique_ptr<Policy> make_policy(const SweepCase& sc,
                                    const trace::TaskTrace& t) {
  const std::string p = sc.policy;
  if (p == "cilk") return std::make_unique<CilkPolicy>();
  if (p == "cilk-d") return std::make_unique<CilkDPolicy>();
  if (p == "sharing") return std::make_unique<SharingPolicy>();
  if (p == "ondemand") return std::make_unique<OndemandPolicy>();
  if (p == "eewa") return std::make_unique<EewaPolicy>(t.class_names);
  // wats: half fast, half slow
  std::vector<std::size_t> rungs(sc.cores, 3);
  for (std::size_t c = 0; c < sc.cores / 2 + 1; ++c) rungs[c] = 0;
  return std::make_unique<WatsPolicy>(rungs, t.class_names);
}

class PolicySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PolicySweep, ConservationInvariantsHold) {
  const auto sc = GetParam();
  const auto t = make_trace(sc);
  auto policy = make_policy(sc, t);
  SimOptions opt;
  opt.cores = sc.cores;
  opt.seed = sc.seed ^ 0xabcdef;
  opt.fixed_adjuster_overhead_s = 20e-6;  // keep runs bit-deterministic
  const auto res = simulate(t, *policy, opt);

  // 1. One BatchStats per batch, spans non-negative.
  ASSERT_EQ(res.batches.size(), t.batch_count());
  double span_total = 0.0;
  for (const auto& b : res.batches) {
    EXPECT_GE(b.span_s, 0.0);
    span_total += b.span_s + b.overhead_s;
  }
  EXPECT_NEAR(res.time_s, span_total, 1e-9);

  // 2. Makespan lower bounds: per batch, work/capacity at F0 and the
  //    largest single task (critical path) plus its release time.
  for (std::size_t b = 0; b < t.batch_count(); ++b) {
    double max_task = 0.0;
    for (const auto& task : t.batches[b].tasks) {
      max_task = std::max(max_task, task.work_s + task.release_s);
    }
    const double capacity_bound =
        t.batches[b].total_work_s() / static_cast<double>(sc.cores);
    EXPECT_GE(res.batches[b].span_s + 1e-9,
              std::max(capacity_bound * 0.999, max_task * 0.999))
        << "batch " << b;
  }

  // 3. Energy envelope: between floor-only and all-cores-max-power.
  const double hi = opt.power.machine_all_active_w(sc.cores, 0) *
                    res.time_s * 1.001 +
                    static_cast<double>(res.transitions) * 1e-3;
  EXPECT_GT(res.energy_j, opt.power.floor_w() * res.time_s * 0.999);
  EXPECT_LE(res.energy_j, hi);

  // 4. Residency adds to cores x wall time (every core always has a
  //    frequency, spinning or working or halted).
  double residency = 0.0;
  for (double r : res.rung_residency_s) residency += r;
  EXPECT_NEAR(residency, static_cast<double>(sc.cores) * res.time_s,
              0.01 * residency + 1e-9);

  // 5. Determinism: the identical run reproduces exactly.
  auto policy2 = make_policy(sc, t);
  const auto res2 = simulate(t, *policy2, opt);
  EXPECT_DOUBLE_EQ(res.time_s, res2.time_s);
  EXPECT_DOUBLE_EQ(res.energy_j, res2.energy_j);
  EXPECT_EQ(res.steals, res2.steals);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  std::uint64_t seed = 100;
  for (const char* policy :
       {"cilk", "cilk-d", "sharing", "ondemand", "wats", "eewa"}) {
    for (const char* shape :
         {"balanced", "bimodal", "geometric", "staggered"}) {
      for (std::size_t cores : {2u, 5u, 16u}) {
        cases.push_back(SweepCase{policy, shape, cores, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, PolicySweep,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& info) {
                           const auto& p = info.param;
                           std::string name = std::string(p.policy) + "_" +
                                              p.shape + "_" +
                                              std::to_string(p.cores);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(SharingPolicy, CentralQueueCompletesEverythingButScalesWorse) {
  // Fine-grained tasks: the shared lock's serialization shows up as a
  // longer makespan versus stealing on the same trace.
  const auto t = trace::balanced(400, 0.0001, 2, 21);
  SimOptions opt;
  opt.cores = 16;
  opt.seed = 22;
  SharingPolicy sharing(/*lock_base_s=*/5e-6);
  CilkPolicy cilk;
  const auto rs = simulate(t, sharing, opt);
  const auto rc = simulate(t, cilk, opt);
  EXPECT_GT(rs.time_s, rc.time_s);
}

}  // namespace
}  // namespace eewa::sim
