// Tests for the fuzz harness itself (seeded generation, determinism,
// shrinking) plus the pinned-seed regression sweep: every seed that
// exposed a real bug during the harness's first sweep stays in this
// file forever, and a broad seed range of each oracle runs under ctest.
#include <gtest/gtest.h>

#include <cstdint>

#include "testing/fuzz.hpp"
#include "testing/oracles.hpp"
#include "testing/scenario.hpp"

namespace eewa::testing {
namespace {

// ------------------------------------------------ seeded generation --

TEST(Scenario, TableSpecIsDeterministicInSeed) {
  for (std::uint64_t seed : {1ull, 7ull, 104ull, 999ull}) {
    const auto a = TableSpec::random(seed);
    const auto b = TableSpec::random(seed);
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(a.classes.size(), b.classes.size());
    EXPECT_EQ(a.ladder_ghz, b.ladder_ghz);
  }
  EXPECT_NE(TableSpec::random(1).summary(), TableSpec::random(2).summary());
}

TEST(Scenario, WorkloadSpecIsDeterministicInSeed) {
  for (std::uint64_t seed : {1ull, 32ull, 512ull}) {
    EXPECT_EQ(WorkloadSpec::random_runtime(seed).summary(),
              WorkloadSpec::random_runtime(seed).summary());
    EXPECT_EQ(WorkloadSpec::random_energy(seed).summary(),
              WorkloadSpec::random_energy(seed).summary());
  }
  EXPECT_NE(WorkloadSpec::random_energy(1).summary(),
            WorkloadSpec::random_energy(2).summary());
}

TEST(Scenario, GeneratedTablesAlwaysBuild) {
  // CCTable::build validates ordering and T; every generated spec must
  // satisfy those preconditions, degenerate shapes included.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto spec = TableSpec::random(seed);
    EXPECT_NO_THROW({
      const auto cc = spec.build();
      EXPECT_GE(cc.rows(), 1u);
      EXPECT_GE(cc.cols(), 1u);
    }) << spec.summary();
  }
}

TEST(Fuzz, RunOneIsDeterministic) {
  const auto a = run_one(FuzzMode::kSearch, 42);
  const auto b = run_one(FuzzMode::kSearch, 42);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.spec_summary, b.spec_summary);
  EXPECT_EQ(a.repro_command(), b.repro_command());
}

// --------------------------------------------------------- shrinking --

TEST(Fuzz, ShrinkTableHonoursInjectedPredicate) {
  // Synthetic "bug": any spec with at least 2 classes fails. The greedy
  // shrinker must drop classes down to exactly 2 — the smallest spec
  // the predicate still rejects — and keep the result well-formed.
  TableSpec spec = TableSpec::random(3);
  while (spec.from_matrix || spec.classes.size() < 3) {
    spec = TableSpec::random(spec.seed + 1);
  }
  const auto shrunk = shrink_table(
      spec, [](const TableSpec& s) { return s.classes.size() >= 2; });
  EXPECT_EQ(shrunk.classes.size(), 2u);
  EXPECT_NO_THROW(shrunk.build());
}

TEST(Fuzz, ShrinkTableReturnsInputWhenNothingSmallerFails) {
  const TableSpec spec = TableSpec::random(5);
  // Predicate rejects everything — shrinking can't make progress past
  // the smallest mutants, but must terminate and stay failing.
  const auto shrunk =
      shrink_table(spec, [](const TableSpec&) { return true; });
  EXPECT_LE(shrunk.classes.size(), spec.classes.size());
  EXPECT_LE(shrunk.cores, spec.cores);
}

TEST(Fuzz, ShrinkWorkloadHonoursInjectedPredicate) {
  WorkloadSpec spec = WorkloadSpec::random_energy(9);
  const auto shrunk = shrink_workload(
      spec, [](const WorkloadSpec& s) { return s.cores >= 2; });
  EXPECT_GE(shrunk.cores, 2u);
  EXPECT_LT(shrunk.cores, spec.cores == 2 ? 3u : spec.cores);
}

// ---------------------------------------------- pinned-seed regressions --
//
// Each seed below exposed a real bug when the harness first ran against
// the pre-fix code; the failures and fixes:
//   search 104, 303 — rung_feasible ignored mean workload when max
//       metadata was missing, admitting rungs where even a mean task
//       misses T (demand()'s rounds<1 fallback then ranked tuples).
//   search 449 — the proxy rung power derived F0/Fj from class column 0
//       alone, mis-pricing rungs when column 0 is zero or memory-bound.
//   energy 1, 4, 9, 18, 28, 32, 36, 39 — a task released while idle
//       cores were mid-probe woke them in the past, rewinding
//       charged_until_ and double-billing residency.

TEST(FuzzRegression, PinnedSearchSeeds) {
  for (std::uint64_t seed : {104ull, 303ull, 449ull}) {
    const auto v = run_one(FuzzMode::kSearch, seed);
    EXPECT_TRUE(v.ok) << v.repro_command() << "\n" << v.failure;
  }
}

TEST(FuzzRegression, PinnedEnergySeeds) {
  for (std::uint64_t seed : {1ull, 4ull, 9ull, 18ull, 28ull, 32ull, 36ull,
                             39ull}) {
    const auto v = run_one(FuzzMode::kEnergy, seed);
    EXPECT_TRUE(v.ok) << v.repro_command() << "\n" << v.failure;
  }
}

// -------------------------------------------------------- seed sweeps --

TEST(FuzzSweep, SearchOracle) {
  const auto r = run_sweep(FuzzMode::kSearch, 1, 300);
  EXPECT_EQ(r.ran, 300u);
  EXPECT_EQ(r.failed, 0u) << (r.failures.empty()
                                  ? ""
                                  : r.failures.front().repro_command() +
                                        "\n" + r.failures.front().failure);
}

TEST(FuzzSweep, RuntimeOracle) {
  const auto r = run_sweep(FuzzMode::kRuntime, 1, 8);
  EXPECT_EQ(r.failed, 0u) << (r.failures.empty()
                                  ? ""
                                  : r.failures.front().repro_command() +
                                        "\n" + r.failures.front().failure);
}

TEST(FuzzSweep, EnergyOracle) {
  const auto r = run_sweep(FuzzMode::kEnergy, 50, 30);
  EXPECT_EQ(r.failed, 0u) << (r.failures.empty()
                                  ? ""
                                  : r.failures.front().repro_command() +
                                        "\n" + r.failures.front().failure);
}

}  // namespace
}  // namespace eewa::testing
