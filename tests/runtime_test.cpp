// Tests for the real-thread runtime: the Chase–Lev deque alone (serial
// semantics plus a concurrent stress test), batch execution under each
// scheduler kind, dynamic spawning, profiling flow into the controller,
// and Cilk-D's self-scaling observed through the DVFS trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>

#include "runtime/chase_lev_deque.hpp"
#include "runtime/runtime.hpp"

namespace eewa::rt {
namespace {

TEST(ChaseLevDeque, LifoOwnerFifoThief) {
  ChaseLevDeque<int*> d;
  int a = 1, b = 2, c = 3;
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.size_approx(), 3u);
  EXPECT_EQ(d.pop(), std::optional<int*>(&c));   // LIFO for the owner
  EXPECT_EQ(d.steal(), std::optional<int*>(&a)); // FIFO for thieves
  EXPECT_EQ(d.pop(), std::optional<int*>(&b));
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_FALSE(d.steal().has_value());
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<std::size_t*> d(4);
  std::vector<std::size_t> vals(1000);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = i;
    d.push(&vals[i]);
  }
  EXPECT_EQ(d.size_approx(), 1000u);
  for (std::size_t i = vals.size(); i-- > 0;) {
    const auto got = d.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(**got, i);
  }
}

TEST(ChaseLevDeque, ConcurrentStealersGetEveryItemOnce) {
  // Owner pushes/pops while 3 thieves steal; every item must be consumed
  // exactly once. (On a 1-CPU box this still interleaves via preemption.)
  constexpr std::size_t kItems = 20000;
  ChaseLevDeque<std::size_t*> d;
  std::vector<std::size_t> vals(kItems);
  for (std::size_t i = 0; i < kItems; ++i) vals[i] = i;

  std::atomic<std::size_t> consumed{0};
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0);

  auto consume = [&](std::size_t* v) {
    seen[*v].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_acq_rel);
  };

  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (auto v = d.steal()) consume(*v);
      }
      while (auto v = d.steal()) consume(*v);
    });
  }
  // Owner: push all, then pop half the time.
  for (std::size_t i = 0; i < kItems; ++i) {
    d.push(&vals[i]);
    if (i % 2 == 0) {
      if (auto v = d.pop()) consume(*v);
    }
  }
  while (auto v = d.pop()) consume(*v);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  // Thieves may race the final drain; finish any leftovers.
  while (auto v = d.steal()) consume(*v);

  EXPECT_EQ(consumed.load(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

TEST(ChaseLevDeque, ManyThievesChecksumEveryElementExactlyOnce) {
  // 1 owner interleaving pushes and pops vs. 7 thieves; the checksum
  // (sum of values) and the count both have to come out exact, so a
  // lost, duplicated, or torn element is caught even if per-item
  // tracking would miss it.
  constexpr std::size_t kItems = 30000;
  constexpr int kThieves = 7;
  ChaseLevDeque<std::size_t*> d;
  std::vector<std::size_t> vals(kItems);
  for (std::size_t i = 0; i < kItems; ++i) vals[i] = i + 1;
  const std::uint64_t expected_sum =
      static_cast<std::uint64_t>(kItems) * (kItems + 1) / 2;

  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::size_t> count{0};
  auto consume = [&](std::size_t* v) {
    sum.fetch_add(*v, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
  };

  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (auto v = d.steal()) consume(*v);
      }
      while (auto v = d.steal()) consume(*v);
    });
  }
  // Owner: push in bursts, pop in between (the Chase–Lev hot pattern
  // where bottom and top chase each other around empty).
  std::size_t next = 0;
  while (next < kItems) {
    const std::size_t burst = std::min<std::size_t>(37, kItems - next);
    for (std::size_t i = 0; i < burst; ++i) d.push(&vals[next++]);
    for (std::size_t i = 0; i < burst / 2; ++i) {
      if (auto v = d.pop()) consume(*v);
    }
  }
  while (auto v = d.pop()) consume(*v);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  while (auto v = d.steal()) consume(*v);

  EXPECT_EQ(count.load(), kItems);
  EXPECT_EQ(sum.load(), expected_sum);
}

RuntimeOptions small_runtime(SchedulerKind kind, std::size_t workers = 4) {
  RuntimeOptions opt;
  opt.workers = workers;
  opt.kind = kind;
  return opt;
}

std::vector<TaskDesc> counting_tasks(std::atomic<int>& counter, int n,
                                     const std::string& cls = "count") {
  std::vector<TaskDesc> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back(TaskDesc{cls, [&counter] {
                               counter.fetch_add(1,
                                                 std::memory_order_relaxed);
                             }});
  }
  return tasks;
}

TEST(Runtime, RunsAllTasksInBatch) {
  Runtime rt(small_runtime(SchedulerKind::kCilk));
  std::atomic<int> counter{0};
  const double span = rt.run_batch(counting_tasks(counter, 100));
  EXPECT_EQ(counter.load(), 100);
  EXPECT_GT(span, 0.0);
  EXPECT_EQ(rt.batches_run(), 1u);
  EXPECT_EQ(rt.tasks_run(), 100u);
}

TEST(Runtime, MultipleBatchesAccumulate) {
  Runtime rt(small_runtime(SchedulerKind::kEewa));
  std::atomic<int> counter{0};
  for (int b = 0; b < 3; ++b) {
    rt.run_batch(counting_tasks(counter, 40));
  }
  EXPECT_EQ(counter.load(), 120);
  EXPECT_EQ(rt.batches_run(), 3u);
  EXPECT_EQ(rt.controller().batches_completed(), 3u);
  EXPECT_GT(rt.controller().ideal_time_s(), 0.0);
}

TEST(Runtime, EmptyBatchCompletes) {
  Runtime rt(small_runtime(SchedulerKind::kCilk));
  EXPECT_GE(rt.run_batch({}), 0.0);
}

TEST(Runtime, ZeroTaskBatchesCompleteUnderEveryScheduler) {
  for (const auto kind :
       {SchedulerKind::kCilk, SchedulerKind::kCilkD, SchedulerKind::kWats,
        SchedulerKind::kEewa}) {
    RuntimeOptions opt = small_runtime(kind, 2);
    if (kind == SchedulerKind::kWats) opt.fixed_rungs = {0, 3};
    Runtime rt(opt);
    // Twice: the second empty batch runs under whatever plan the first
    // one produced (EEWA plans from an empty profile).
    EXPECT_GE(rt.run_batch({}), 0.0);
    EXPECT_GE(rt.run_batch({}), 0.0);
    EXPECT_EQ(rt.tasks_run(), 0u);
    const auto& report = rt.last_batch_report();
    EXPECT_EQ(report.tasks, 0u);
    EXPECT_EQ(report.acquires(), 0u);
    // The runtime stays usable afterwards.
    std::atomic<int> counter{0};
    rt.run_batch(counting_tasks(counter, 8));
    EXPECT_EQ(counter.load(), 8);
  }
}

TEST(Runtime, RecursiveSpawnsRunWithinBatch) {
  // Spawns from spawned tasks (grandchildren) must still run before the
  // batch barrier releases.
  Runtime rt(small_runtime(SchedulerKind::kCilk, 2));
  std::atomic<int> counter{0};
  Runtime* rtp = &rt;
  std::vector<TaskDesc> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(TaskDesc{"parent", [rtp, &counter] {
      counter.fetch_add(1);
      rtp->spawn("child", [rtp, &counter] {
        counter.fetch_add(10);
        rtp->spawn("grandchild",
                   [&counter] { counter.fetch_add(100); });
      });
    }});
  }
  rt.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 4 * 111);
  EXPECT_EQ(rt.tasks_run(), 12u);
  const auto& report = rt.last_batch_report();
  EXPECT_EQ(report.tasks, 12u);
  EXPECT_EQ(report.spawns, 8u);
  EXPECT_EQ(report.acquires(), report.tasks);
}

TEST(Runtime, ProfilesFlowIntoController) {
  Runtime rt(small_runtime(SchedulerKind::kEewa, 2));
  std::atomic<int> counter{0};
  rt.run_batch(counting_tasks(counter, 10, "my_class"));
  const auto& reg = rt.controller().registry();
  const auto id = reg.id_of("my_class");
  EXPECT_EQ(reg.total_count(id), 10u);
  EXPECT_GT(reg.mean_workload(id), 0.0);
}

TEST(Runtime, SpawnedTasksRunWithinBatch) {
  Runtime rt(small_runtime(SchedulerKind::kCilk, 2));
  std::atomic<int> counter{0};
  std::vector<TaskDesc> tasks;
  Runtime* rtp = &rt;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(TaskDesc{"parent", [rtp, &counter] {
                               counter.fetch_add(1);
                               rtp->spawn("child", [&counter] {
                                 counter.fetch_add(10);
                               });
                             }});
  }
  rt.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 4 + 40);
}

TEST(Runtime, SpawnOutsideWorkerThrows) {
  Runtime rt(small_runtime(SchedulerKind::kCilk, 2));
  EXPECT_THROW(rt.spawn("x", [] {}), std::logic_error);
}

TEST(Runtime, CilkDDropsIdleWorkersInTrace) {
  // One long task + nothing else: other workers sweep, fail, and must
  // request the bottom rung; the internal trace backend records it.
  Runtime rt(small_runtime(SchedulerKind::kCilkD, 4));
  std::vector<TaskDesc> tasks;
  tasks.push_back(TaskDesc{"long", [] {
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(50));
                           }});
  rt.run_batch(std::move(tasks));
  ASSERT_NE(rt.trace_backend(), nullptr);
  const auto log = rt.trace_backend()->transitions();
  bool dropped = false;
  for (const auto& t : log) {
    if (t.freq_index == rt.backend().ladder().slowest_index()) {
      dropped = true;
    }
  }
  EXPECT_TRUE(dropped);
}

TEST(Runtime, EewaAppliesPlanToBackendAfterMeasurementBatch) {
  Runtime rt(small_runtime(SchedulerKind::kEewa, 4));
  std::atomic<int> counter{0};
  // Short, imbalanced tasks: plan should downclock something.
  auto make_tasks = [&counter] {
    std::vector<TaskDesc> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back(TaskDesc{"small", [&counter] {
                                 volatile int x = 0;
                                 for (int k = 0; k < 20000; ++k) x = x + k;
                                 (void)x;
                                 counter.fetch_add(1);
                               }});
    }
    return tasks;
  };
  rt.run_batch(make_tasks());
  rt.run_batch(make_tasks());
  EXPECT_EQ(counter.load(), 32);
  EXPECT_GE(rt.controller().batches_completed(), 2u);
  // The plan was applied through the backend (trace shows transitions or
  // the layout is uniform-F0 -- both acceptable; just ensure apply ran).
  SUCCEED();
}

TEST(Runtime, WatsRequiresFixedRungs) {
  RuntimeOptions opt = small_runtime(SchedulerKind::kWats, 4);
  EXPECT_THROW(Runtime rt(opt), std::invalid_argument);
}

TEST(Runtime, WatsRunsWithFixedRungs) {
  RuntimeOptions opt = small_runtime(SchedulerKind::kWats, 4);
  opt.fixed_rungs = {0, 0, 3, 3};
  Runtime rt(opt);
  std::atomic<int> counter{0};
  rt.run_batch(counting_tasks(counter, 30));
  rt.run_batch(counting_tasks(counter, 30));
  EXPECT_EQ(counter.load(), 60);
  EXPECT_EQ(rt.backend().frequency_index(0), 0u);
  EXPECT_EQ(rt.backend().frequency_index(3), 3u);
}

TEST(Runtime, FixedRungsSizeValidated) {
  RuntimeOptions opt = small_runtime(SchedulerKind::kCilk, 4);
  opt.fixed_rungs = {0, 1};
  EXPECT_THROW(Runtime rt(opt), std::invalid_argument);
}

TEST(Runtime, ThrowingTaskDoesNotKillTheBatch) {
  Runtime rt(small_runtime(SchedulerKind::kCilk, 2));
  std::atomic<int> counter{0};
  std::vector<TaskDesc> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back(TaskDesc{"t", [&counter, i] {
                               if (i == 3) {
                                 throw std::runtime_error("task boom");
                               }
                               counter.fetch_add(1);
                             }});
  }
  EXPECT_THROW(rt.run_batch(std::move(tasks)), std::runtime_error);
  // Every other task still ran; the runtime stays usable.
  EXPECT_EQ(counter.load(), 9);
  EXPECT_EQ(rt.failed_tasks(), 1u);
  rt.run_batch(counting_tasks(counter, 5));
  EXPECT_EQ(counter.load(), 14);
}

TEST(Runtime, FailedTasksStayOutOfTheProfile) {
  // Regression: a throwing task used to be recorded into the profiler
  // like a completed one. An instantly-throwing task looks ultra-fast,
  // so its class's mean normalized workload collapsed toward zero and
  // the next batch's CC table was built from fiction.
  Runtime rt(small_runtime(SchedulerKind::kEewa, 2));
  auto busy_task = [](std::atomic<int>& c) {
    return [&c] {
      volatile int x = 0;
      for (int k = 0; k < 400000; ++k) x += k;
      (void)x;
      c.fetch_add(1);
    };
  };
  std::atomic<int> counter{0};
  std::vector<TaskDesc> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(TaskDesc{"steady", busy_task(counter)});
  }
  rt.run_batch(std::move(tasks));
  const auto& reg = rt.controller().registry();
  const auto id = reg.id_of("steady");
  ASSERT_EQ(reg.total_count(id), 8u);
  const double clean_mean = reg.mean_workload(id);
  ASSERT_GT(clean_mean, 0.0);

  // Same class again, half the tasks throwing instantly.
  std::vector<TaskDesc> mixed;
  for (int i = 0; i < 8; ++i) {
    mixed.push_back(TaskDesc{"steady", busy_task(counter)});
    mixed.push_back(
        TaskDesc{"steady", [] { throw std::runtime_error("boom"); }});
  }
  EXPECT_THROW(rt.run_batch(std::move(mixed)), std::runtime_error);

  // Only the 8 successful tasks were profiled, and the mean did not get
  // dragged toward zero by 8 instant failures (allow scheduling noise).
  EXPECT_EQ(reg.total_count(id), 16u);
  EXPECT_GT(reg.mean_workload(id), clean_mean * 0.5);
  // The failures are still visible to observability, just not to Eq. 1.
  const auto& report = rt.last_batch_report();
  ASSERT_GT(report.classes.size(), id);
  EXPECT_EQ(report.classes[id].failed, 8u);
  EXPECT_EQ(report.classes[id].count, 16u);
}

TEST(Runtime, FirstOfSeveralFailuresWins) {
  Runtime rt(small_runtime(SchedulerKind::kCilk, 2));
  std::vector<TaskDesc> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(
        TaskDesc{"t", [] { throw std::logic_error("all boom"); }});
  }
  EXPECT_THROW(rt.run_batch(std::move(tasks)), std::logic_error);
  EXPECT_EQ(rt.failed_tasks(), 4u);
}

TEST(Runtime, ClassIdInterningIsStable) {
  Runtime rt(small_runtime(SchedulerKind::kCilk, 2));
  const auto a = rt.class_id("alpha");
  EXPECT_EQ(rt.class_id("alpha"), a);
  EXPECT_NE(rt.class_id("beta"), a);
}

TEST(Runtime, StealsHappenWithSingleSourceWorker) {
  // All tasks land on worker pools round-robin; with more tasks than
  // workers and uneven durations, some stealing occurs.
  Runtime rt(small_runtime(SchedulerKind::kCilk, 4));
  std::atomic<int> counter{0};
  std::vector<TaskDesc> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back(TaskDesc{"t", [&counter, i] {
                               volatile int x = 0;
                               for (int k = 0; k < (i % 7) * 3000; ++k) {
                                 x = x + k;
                               }
                               (void)x;
                               counter.fetch_add(1);
                             }});
  }
  rt.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 64);
  // Steal counter is best-effort; just ensure it is readable.
  EXPECT_GE(rt.total_steals(), 0u);
}

}  // namespace
}  // namespace eewa::rt
